// Package gateway implements the Security Gateway (paper §III-A, §V):
// the SDN-based home router that monitors new devices, extracts their
// fingerprints, consults the IoT Security Service, and enforces the
// returned isolation level on every forwarded frame.
//
// The gateway plugs into the netsim medium as its bridge function. Frame
// handling mirrors the paper's datapath: the custom controller module
// sees every flow; established flows hit the exact-match flow cache; the
// first packet of a new flow pays a flow-setup cost. The time spent in
// monitoring and rule lookup is *measured* on the host and injected into
// the virtual timeline, so enforcement overhead in the experiments is
// real, not assumed.
package gateway

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/enforce"
	"repro/internal/fingerprint"
	"repro/internal/flowtable"
	"repro/internal/iotssp"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/sniff"
)

// Identifier is the gateway's dependency on the IoT Security Service.
// Both the TCP client and the in-process service adapter satisfy it.
//
// Identify is called concurrently from the gateway's pool of
// IdentWorkers goroutines; implementations must be safe for concurrent
// use.
type Identifier interface {
	Identify(ctx context.Context, mac string, fp *fingerprint.Fingerprint) (iotssp.Response, error)
}

// BatchIdentifier is the streamed-batch refinement of Identifier: the
// gateway's identification workers aggregate queued setup captures and
// submit them as one call instead of one round-trip per capture. The
// pooled TCP client answers it with a single pipelined burst per
// connection; the in-process adapter feeds the service's batch path
// directly. Results and errors are positional: errs[i] reports the
// fate of (macs[i], fps[i]) and resps[i] is only meaningful when
// errs[i] is nil. Implementations must be safe for concurrent use.
type BatchIdentifier interface {
	IdentifyBatch(ctx context.Context, macs []string, fps []*fingerprint.Fingerprint) ([]iotssp.Response, []error)
}

// LocalService adapts an in-process iotssp.Service to the Identifier
// interface (for simulations that do not need the TCP hop).
type LocalService struct {
	Svc *iotssp.Service
}

// Identify implements Identifier.
func (l LocalService) Identify(_ context.Context, mac string, fp *fingerprint.Fingerprint) (iotssp.Response, error) {
	report, err := fingerprint.MarshalReportStruct(mac, fp)
	if err != nil {
		return iotssp.Response{}, err
	}
	resp := l.Svc.Handle(iotssp.Request{Fingerprint: report})
	if resp.Error != "" {
		return resp, fmt.Errorf("gateway: service error: %s", resp.Error)
	}
	return resp, nil
}

// IdentifyBatch implements BatchIdentifier straight onto the service's
// batched verdict path (cache, dedup, one bank inference pass).
func (l LocalService) IdentifyBatch(_ context.Context, macs []string, fps []*fingerprint.Fingerprint) ([]iotssp.Response, []error) {
	resps := l.Svc.IdentifyBatch(macs, fps, 0)
	errs := make([]error, len(resps))
	for i, resp := range resps {
		if resp.Error != "" {
			errs[i] = fmt.Errorf("gateway: service error: %s", resp.Error)
		}
	}
	return resps, errs
}

// GatewayConfig is the intention-revealing name for this package's
// Config: three packages (core, gateway, dataplane) each export a
// Config, and call sites that assemble a whole deployment read better
// when each one names its layer. New code should prefer GatewayConfig;
// Config remains as the canonical declaration.
type GatewayConfig = Config

// Config configures a Security Gateway.
type Config struct {
	// MAC and IP identify the gateway itself on the local segment.
	MAC packet.MAC
	IP  packet.IP4
	// LocalNet is the /24 network address of the home network.
	LocalNet packet.IP4
	// Filtering enables enforcement (the "with filtering" mode of the
	// paper's experiments). With filtering off the gateway still bridges
	// and monitors but never blocks.
	Filtering bool
	// SetupEnd tunes the setup-phase end detector; zero value selects
	// sniff.GatewayConfig().
	SetupEnd fingerprint.SetupEndConfig
	// BaseForwardCost is the modeled datapath cost of bridging one frame
	// (kernel/OVS forwarding on the Raspberry Pi). Applied in both
	// filtering modes. Zero selects 150µs.
	BaseForwardCost time.Duration
	// FlowSetupCost is the modeled controller upcall cost paid by the
	// first packet of each flow when filtering is enabled. Zero selects
	// 900µs.
	FlowSetupCost time.Duration
	// PSKSeed seeds per-device credential generation.
	PSKSeed int64

	// IdentWorkers is the number of goroutines servicing the
	// identification queue. Zero selects 2. The packet path never blocks
	// on these workers: a completed setup capture is queued, a strict
	// quarantine rule confines the device, and the real rule replaces it
	// when the asynchronous result is applied.
	IdentWorkers int
	// IdentQueue bounds the identification queue. A capture arriving
	// with the queue full fails safe: the device stays in strict
	// quarantine and the overflow is surfaced as an error Event and a
	// Notification. Zero selects 64.
	IdentQueue int
	// IdentTimeout bounds each identification round-trip to the IoT
	// Security Service; the context handed to the Identifier carries
	// this deadline. Zero selects 10s.
	IdentTimeout time.Duration
	// IdentBatch caps how many queued captures one worker drains into a
	// single streamed batch when the Identifier also implements
	// BatchIdentifier: a burst of devices joining at once (a smart-home
	// power-up) then costs one pipelined round-trip per flush instead of
	// one per capture. 1 disables batching. Zero selects 8.
	IdentBatch int
}

// withDefaults fills zero-valued knobs.
func (c Config) withDefaults() Config {
	if c.SetupEnd == (fingerprint.SetupEndConfig{}) {
		c.SetupEnd = sniff.GatewayConfig()
	}
	if c.BaseForwardCost == 0 {
		c.BaseForwardCost = 150 * time.Microsecond
	}
	if c.FlowSetupCost == 0 {
		c.FlowSetupCost = 900 * time.Microsecond
	}
	if c.IdentWorkers <= 0 {
		c.IdentWorkers = 2
	}
	if c.IdentQueue <= 0 {
		c.IdentQueue = 64
	}
	if c.IdentTimeout <= 0 {
		c.IdentTimeout = 10 * time.Second
	}
	if c.IdentBatch <= 0 {
		c.IdentBatch = 8
	}
	return c
}

// Event records one device identification handled by the gateway.
type Event struct {
	At         time.Time
	MAC        packet.MAC
	Known      bool
	DeviceType string
	Level      enforce.IsolationLevel
	Err        error
}

// Notification is a user-facing alert raised by the gateway: either a
// device whose flaws cannot be mitigated by network isolation (§III-C3 —
// the vulnerability is reachable over a channel the gateway cannot
// filter, so the user should locate and remove the device), or an
// identification failure (service error, timeout, queue overflow) that
// left a device confined in strict quarantine.
type Notification struct {
	At         time.Time
	MAC        packet.MAC
	DeviceType string
	// Channels names the uncontrollable communication channels
	// (§III-C3 alerts only).
	Channels []string
	// Err is the identification failure that triggered the alert, nil
	// for §III-C3 alerts.
	Err error
}

// String renders the alert for the gateway's management interface.
func (n Notification) String() string {
	if n.Err != nil {
		return fmt.Sprintf("SECURITY ALERT: identification of %s failed (%v); the device remains in strict quarantine",
			n.MAC, n.Err)
	}
	return fmt.Sprintf("SECURITY ALERT: %s (%s) has flaws reachable over %v, which this gateway cannot filter; please locate and remove the device",
		n.DeviceType, n.MAC, n.Channels)
}

// CPUStats is the gateway's busy-time accounting, the basis of the
// Fig. 6b CPU-utilization experiment.
type CPUStats struct {
	// Busy is the accumulated per-frame processing time: the modeled
	// forwarding cost plus the measured monitoring/lookup time.
	Busy time.Duration
	// Frames is the number of frames processed.
	Frames uint64
}

// identJob is one queued identification: a completed setup capture
// waiting for a worker.
type identJob struct {
	seq int64
	mac packet.MAC
	at  time.Time
	fp  *fingerprint.Fingerprint
}

// identDone is a finished identification waiting to be applied on the
// gateway goroutine.
type identDone struct {
	job  identJob
	resp iotssp.Response
	err  error
}

// Gateway is the Security Gateway. Drive it from a single goroutine (the
// simulation loop). The packet path never blocks on identification:
// completed setup captures are queued to a pool of identifier workers
// while the device sits behind a strict quarantine rule, and the
// asynchronous results are applied on the driving goroutine by Tick and
// Drain.
type Gateway struct {
	cfg     Config
	monitor *sniff.Monitor
	engine  *enforce.Engine
	table   *flowtable.Table
	ident   Identifier
	psk     *PSKManager

	// Events is the identification log, in apply order (queue order
	// within each Tick/Drain batch).
	Events []Event
	// Notifications collects the user alerts: devices that must be
	// removed manually (§III-C3) and identification failures that left a
	// device quarantined.
	Notifications []Notification
	// CPU accumulates datapath busy time.
	CPU CPUStats

	// busyUntil models the gateway CPU as a single server in virtual
	// time: frames arriving while a previous frame is still being
	// processed queue behind it, so latency grows gently with load
	// (Fig. 6a) and utilization is a true busy fraction (Fig. 6b).
	busyUntil time.Time

	// deviceIPs records the source IPs observed per device MAC, for
	// operator display and rule compilation.
	deviceIPs map[packet.IP4]packet.MAC

	// Identification queue state. jobs feeds the worker pool; done
	// collects finished identifications until the gateway goroutine
	// applies them. inFlight counts enqueued-but-unapplied jobs so
	// Drain knows when the pipeline is empty.
	jobs     chan identJob
	seq      int64
	workers  sync.Once
	closed   bool
	inFlight sync.WaitGroup
	pending  atomic.Int64
	doneMu   sync.Mutex
	done     []identDone
}

// New assembles a gateway.
func New(cfg Config, ident Identifier) *Gateway {
	cfg = cfg.withDefaults()
	g := &Gateway{
		cfg:       cfg,
		monitor:   sniff.NewMonitor(cfg.SetupEnd),
		engine:    enforce.NewEngine(cfg.LocalNet),
		table:     flowtable.New(flowtable.WithDefaultAction(flowtable.ActionController)),
		ident:     ident,
		psk:       NewPSKManager(cfg.PSKSeed),
		deviceIPs: make(map[packet.IP4]packet.MAC),
		jobs:      make(chan identJob, cfg.IdentQueue),
	}
	g.monitor.IgnoreMACs[cfg.MAC] = true
	g.monitor.OnSetupComplete = g.onSetupComplete
	return g
}

// Engine exposes the enforcement engine (rule cache).
func (g *Gateway) Engine() *enforce.Engine { return g.engine }

// Table exposes the flow table.
func (g *Gateway) Table() *flowtable.Table { return g.table }

// Monitor exposes the device monitor.
func (g *Gateway) Monitor() *sniff.Monitor { return g.monitor }

// PSK exposes the credential manager.
func (g *Gateway) PSK() *PSKManager { return g.psk }

// Ignore excludes a MAC from device monitoring (infrastructure and
// measurement hosts).
func (g *Gateway) Ignore(mac packet.MAC) { g.monitor.IgnoreMACs[mac] = true }

// MarkInfrastructure declares mac an infrastructure endpoint: it is
// neither monitored as a device nor subject to overlay confinement.
func (g *Gateway) MarkInfrastructure(mac packet.MAC) {
	g.Ignore(mac)
	g.engine.SetInfrastructure(mac)
}

// onSetupComplete fingerprints a completed capture, installs a strict
// quarantine rule and hands the capture to the identifier workers. The
// packet path continues immediately; the quarantine rule is replaced
// when the asynchronous result is applied.
func (g *Gateway) onSetupComplete(c sniff.Capture) {
	fp := c.Fingerprint()
	at := c.Packets[len(c.Packets)-1].Timestamp
	if g.ident == nil {
		// No identification service configured (pure enforcement
		// testbeds): confine unknowns as strict.
		g.installRule(enforce.Rule{DeviceMAC: c.MAC, Level: enforce.Strict})
		g.Events = append(g.Events, Event{MAC: c.MAC, At: at, Level: enforce.Strict})
		return
	}

	// Quarantine until the verdict arrives: the device can complete its
	// setup against the strict overlay but reaches nothing else.
	g.installRule(enforce.Rule{DeviceMAC: c.MAC, Level: enforce.Strict})

	job := identJob{seq: g.seq, mac: c.MAC, at: at, fp: fp}
	g.seq++
	if g.closed {
		g.failJob(job, fmt.Errorf("gateway: identification queue closed"))
		return
	}
	g.workers.Do(g.startWorkers)
	g.inFlight.Add(1)
	select {
	case g.jobs <- job:
		g.pending.Add(1)
	default:
		// Queue overflow: fail safe in quarantine and tell the user
		// rather than blocking the packet path or dropping silently.
		g.inFlight.Done()
		g.failJob(job, fmt.Errorf("gateway: identification queue full (capacity %d, %d pending)", cap(g.jobs), g.pending.Load()))
	}
}

// failJob records a capture that never reached the service: an error
// Event plus a Notification, with the quarantine rule left in place.
func (g *Gateway) failJob(job identJob, err error) {
	g.Events = append(g.Events, Event{MAC: job.mac, At: job.at, Level: enforce.Strict, Err: err})
	g.Notifications = append(g.Notifications, Notification{At: job.at, MAC: job.mac, Err: err})
}

// startWorkers launches the identifier pool.
func (g *Gateway) startWorkers() {
	for i := 0; i < g.cfg.IdentWorkers; i++ {
		go g.identWorker()
	}
}

// identWorker services the identification queue. When the identifier
// supports streamed batches, each wakeup drains up to IdentBatch queued
// captures and submits them as one burst — the gateway-side half of the
// ROADMAP's "stream batches through the gateway" item (the server's
// dispatcher already batches across connections; now a burst of local
// captures arrives there as one pipelined flush too). Otherwise each
// job gets its own deadline-bounded round-trip. Outcomes are parked
// until the gateway goroutine applies them.
func (g *Gateway) identWorker() {
	batcher, streamed := g.ident.(BatchIdentifier)
	if !streamed || g.cfg.IdentBatch <= 1 {
		for job := range g.jobs {
			ctx, cancel := context.WithTimeout(context.Background(), g.cfg.IdentTimeout)
			resp, err := g.ident.Identify(ctx, job.mac.String(), job.fp)
			cancel()
			g.park(identDone{job: job, resp: resp, err: err})
			g.inFlight.Done()
		}
		return
	}
	for job := range g.jobs {
		batch := []identJob{job}
	drain:
		for len(batch) < g.cfg.IdentBatch {
			select {
			case next, more := <-g.jobs:
				if !more {
					break drain
				}
				batch = append(batch, next)
			default:
				break drain
			}
		}
		macs := make([]string, len(batch))
		fps := make([]*fingerprint.Fingerprint, len(batch))
		for i, j := range batch {
			macs[i] = j.mac.String()
			fps[i] = j.fp
		}
		ctx, cancel := context.WithTimeout(context.Background(), g.cfg.IdentTimeout)
		resps, errs := batcher.IdentifyBatch(ctx, macs, fps)
		cancel()
		for i, j := range batch {
			d := identDone{job: j}
			ok := i < len(resps) && (i >= len(errs) || errs[i] == nil)
			if ok {
				d.resp = resps[i]
			} else {
				// The entry failed inside the shared-deadline burst (or the
				// batch came back short): give it the same private deadline
				// an unbatched capture would have had, so a transient
				// outage mid-burst cannot cost verdicts the per-request
				// path would have absorbed.
				jctx, jcancel := context.WithTimeout(context.Background(), g.cfg.IdentTimeout)
				d.resp, d.err = g.ident.Identify(jctx, macs[i], fps[i])
				jcancel()
			}
			g.park(d)
			g.inFlight.Done()
		}
	}
}

// park queues a finished identification for the gateway goroutine.
func (g *Gateway) park(d identDone) {
	g.doneMu.Lock()
	g.done = append(g.done, d)
	g.doneMu.Unlock()
}

// applyCompleted installs the results of finished identifications. It
// runs on the gateway goroutine (from Tick or Drain), so rule and event
// state stay single-writer. Results are applied in queue order within
// each batch to keep simulations deterministic.
func (g *Gateway) applyCompleted() {
	g.doneMu.Lock()
	batch := g.done
	g.done = nil
	g.doneMu.Unlock()
	if len(batch) == 0 {
		return
	}
	sort.Slice(batch, func(i, j int) bool { return batch[i].job.seq < batch[j].job.seq })
	for _, d := range batch {
		g.applyResult(d)
		g.pending.Add(-1)
	}
}

// applyResult turns one identification outcome into enforcement state.
func (g *Gateway) applyResult(d identDone) {
	if d.err != nil {
		// Fail safe: unreachable or timed-out service means the
		// quarantine rule stays, and the user hears about it.
		g.failJob(d.job, d.err)
		return
	}
	ev := Event{MAC: d.job.mac, At: d.job.at}
	resp := d.resp
	level, err := iotssp.ParseLevel(resp.Level)
	if err != nil {
		level = enforce.Strict
	}
	ev.Known = resp.Known
	ev.DeviceType = resp.DeviceType
	ev.Level = level

	rule := enforce.Rule{DeviceMAC: d.job.mac, DeviceType: resp.DeviceType, Level: level}
	for _, ep := range resp.PermittedEndpoints {
		ip, perr := packet.ParseIP4(ep)
		if perr != nil {
			continue
		}
		rule.PermittedIPs = append(rule.PermittedIPs, ip)
	}
	g.installRule(rule)
	g.psk.Issue(d.job.mac)
	g.Events = append(g.Events, ev)
	if resp.NotifyUser {
		g.Notifications = append(g.Notifications, Notification{
			At:         ev.At,
			MAC:        d.job.mac,
			DeviceType: resp.DeviceType,
			Channels:   append([]string(nil), resp.UncontrolledChannels...),
		})
	}
}

// Drain blocks until every queued identification has completed, then
// applies the results. Call it at simulation barriers (end of a replay,
// before asserting on Events) where the asynchronous pipeline must be
// empty.
func (g *Gateway) Drain() {
	g.inFlight.Wait()
	g.applyCompleted()
}

// Pending returns the number of identifications enqueued or running
// whose results have not been applied yet.
func (g *Gateway) Pending() int {
	return int(g.pending.Load())
}

// Close stops the identifier workers. Captures completing afterwards
// fail safe into quarantine. Close does not wait for in-flight work;
// call Drain first to apply it.
func (g *Gateway) Close() {
	if g.closed {
		return
	}
	g.closed = true
	close(g.jobs)
}

// installRule stores the enforcement rule and recompiles the flow table.
// Overlay membership may shift with every new rule, so all device rules
// are recompiled with their current peers, as the controller module
// revalidates flows after a table change.
func (g *Gateway) installRule(r enforce.Rule) {
	old, hadOld := g.engine.RuleFor(r.DeviceMAC)
	if err := g.engine.SetRule(r); err != nil {
		// Rejected rule: leave the engine and flow table exactly as they
		// were, still consistent with each other.
		return
	}
	// Drop the flow rules compiled for the rule this one replaced: a
	// quarantine rule's cookie differs from its successor's, so the
	// recompile loop below would never remove its entries and the
	// device would keep its quarantine-overlay reachability.
	if hadOld {
		g.table.RemoveByCookie(old.Hash())
	}
	for _, rule := range g.engine.Rules() {
		g.table.RemoveByCookie(rule.Hash())
		peers := g.engine.OverlayPeers(rule.Level, rule.DeviceMAC)
		for _, fr := range enforce.CompileFlowRules(rule, peers, g.cfg.MAC, g.cfg.IP) {
			g.table.Add(fr)
		}
	}
}

// Bridge returns the netsim bridge function implementing the gateway
// datapath.
func (g *Gateway) Bridge() netsim.BridgeFunc {
	return func(now time.Time, src *netsim.Host, p *packet.Packet) (bool, time.Duration) {
		t0 := time.Now()

		// Monitoring: track new devices' setup phases.
		g.monitor.Observe(p)
		if p.IPv4 != nil && p.IPv4.Src != packet.IP4Zero && g.engine.IsLocal(p.IPv4.Src) {
			g.deviceIPs[p.IPv4.Src] = p.Eth.Src
		}

		deliver := true
		var procDelay time.Duration
		if g.cfg.Filtering {
			key := flowtable.KeyOf(p)
			action := g.table.LookupAt(key, now)
			if action == flowtable.ActionController {
				// First packet of an unclassified flow: the controller
				// module decides, installs the microflow, and the packet
				// pays the upcall cost.
				verdict := g.engine.DecidePacket(p)
				if verdict.Allow {
					action = flowtable.ActionForward
				} else {
					action = flowtable.ActionDrop
				}
				g.table.InsertCache(key, action, 0)
				procDelay += g.cfg.FlowSetupCost
			}
			deliver = action == flowtable.ActionForward
		}

		measured := time.Since(t0)
		serviceTime := procDelay + measured + g.cfg.BaseForwardCost
		g.CPU.Busy += serviceTime
		g.CPU.Frames++

		// Single-server queueing: wait for the datapath to drain, then
		// occupy it for this frame's service time.
		var waiting time.Duration
		if g.busyUntil.After(now) {
			waiting = g.busyUntil.Sub(now)
			g.busyUntil = g.busyUntil.Add(serviceTime)
		} else {
			g.busyUntil = now.Add(serviceTime)
		}
		return deliver, waiting + serviceTime
	}
}

// Tick lets the gateway finish captures for devices that have gone
// silent and applies identification results that arrived since the last
// call; call it periodically from the simulation.
func (g *Gateway) Tick(now time.Time) {
	g.monitor.Tick(now)
	g.applyCompleted()
}

// Utilization converts busy time over an elapsed window into a CPU
// percentage on top of a baseline (the Pi's OS + controller idle load).
func (c CPUStats) Utilization(elapsed time.Duration, baselinePct float64) float64 {
	if elapsed <= 0 {
		return baselinePct
	}
	return baselinePct + 100*float64(c.Busy)/float64(elapsed)
}
