package iotssp

import (
	"bufio"
	"fmt"
	"io"
	"net"

	"repro/internal/fingerprint"
	"repro/internal/lineconn"
)

// Server-side state of the v4 wire-compression generation. Each
// connection owns one connWire: the per-connection fingerprint
// dictionary (nil until a hello negotiates one) and the framed-flate
// handshake state. The read pump is the only writer, so no locking —
// dictionary coherence depends on decoding requests in connection line
// order, which the single read pump guarantees.

// connWire is one connection's negotiated wire-compression state.
type connWire struct {
	// dict is the per-connection fingerprint dictionary, created by the
	// first hello that asks for one. It lives and dies with the TCP
	// connection: a reconnecting client starts from an empty dictionary
	// on both ends, which is what keeps the two coherent.
	dict     *fingerprint.Dict
	dictSize int
	// comp reports that responses travel as compressed frames;
	// compPending that the hello granting them has not been sent yet
	// (the grant itself must go out plain).
	comp        bool
	compPending bool
	// reqNames and respNames are the connection's type-name intern
	// tables (one per direction), created with the dictionary: requests
	// reference candidate names they sent before, responses reference
	// accepts/score names. They share the dictionary's coherence rules.
	reqNames  *nameDec
	respNames *nameEnc
	// fatal marks the connection unrecoverable: a dictionary-coded
	// request failed to decode, so the two ends' dictionaries can no
	// longer be trusted to agree. The read pump sends the error and
	// severs; the reconnect resets both dictionaries.
	fatal bool
}

// switchFrames is the write pump's in-band signal to start framing:
// everything queued before it (the hello reply granting flate) is
// flushed plain, everything after travels compressed.
type switchFrames struct{}

// negotiateWire applies a hello's wire-compression asks to the
// connection and echoes the grants into the hello reply. Both peers
// must speak v4; older clients' hellos carry no asks and older servers
// grant nothing, so either side negotiates the pair down to plain v3
// behaviour. Repeated hellos re-echo the standing grants without
// resetting the dictionary or double-switching the framing.
func (s *Server) negotiateWire(resp *shardResponse, v int, comp string, dictAsk int, cw *connWire) {
	if s.cfg.ProtocolCap < 4 || v < 4 {
		return
	}
	if dictAsk > 0 && cw.dict == nil {
		size := dictAsk
		if size > MaxDictSize {
			size = MaxDictSize
		}
		cw.dict = fingerprint.NewDict(size)
		cw.dictSize = size
		cw.reqNames = &nameDec{}
		cw.respNames = &nameEnc{}
	}
	if cw.dictSize > 0 {
		resp.Dict = cw.dictSize
	}
	if comp == CompFlate && !cw.comp && !cw.compPending {
		cw.compPending = true
	}
	if cw.comp || cw.compPending {
		resp.Comp = CompFlate
	}
}

// maxLineBytes caps one request line, matching the bufio.Scanner
// buffer the pre-v4 read pumps used.
const maxLineBytes = 16 * 1024 * 1024

// lineScanner reads request lines off a connection, in either wire
// shape: plain '\n'-terminated JSON lines, or — after startFrames —
// lines carried inside compressed frames. It mirrors bufio.Scanner's
// contract (Scan/Bytes/Err, a final unterminated line is still
// returned) so the read pumps keep their shape.
type lineScanner struct {
	br   *bufio.Reader
	fr   *lineconn.FrameReader
	line []byte
	buf  []byte
	err  error
}

func newLineScanner(conn net.Conn) *lineScanner {
	return &lineScanner{br: bufio.NewReaderSize(conn, 64*1024)}
}

// startFrames switches the scanner to the framed transport. Bytes
// already buffered stay in play: the first frame may begin immediately
// after the hello line that negotiated it.
func (s *lineScanner) startFrames() {
	s.fr = lineconn.NewFrameReader(s.br)
}

// Scan advances to the next request line.
func (s *lineScanner) Scan() bool {
	if s.err != nil {
		return false
	}
	if s.fr != nil {
		line, _, err := s.fr.Next()
		if err != nil {
			if err != io.EOF {
				s.err = err
			}
			return false
		}
		s.line = trimLine(line)
		return true
	}
	s.buf = s.buf[:0]
	for {
		chunk, err := s.br.ReadSlice('\n')
		s.buf = append(s.buf, chunk...)
		if err == nil {
			break
		}
		if err == bufio.ErrBufferFull {
			if len(s.buf) > maxLineBytes {
				s.err = fmt.Errorf("iotssp: request line exceeds %d bytes", maxLineBytes)
				return false
			}
			continue
		}
		if err == io.EOF {
			if len(s.buf) == 0 {
				return false // clean end of stream
			}
			break // final unterminated line, bufio.Scanner compat
		}
		s.err = err
		return false
	}
	if len(s.buf) > maxLineBytes {
		s.err = fmt.Errorf("iotssp: request line exceeds %d bytes", maxLineBytes)
		return false
	}
	s.line = trimLine(s.buf)
	return true
}

// Bytes returns the current line, valid until the next Scan.
func (s *lineScanner) Bytes() []byte { return s.line }

// Err reports the first non-EOF error, as bufio.Scanner does.
func (s *lineScanner) Err() error { return s.err }

// trimLine strips the trailing newline (and optional carriage return),
// matching bufio.ScanLines.
func trimLine(b []byte) []byte {
	if n := len(b); n > 0 && b[n-1] == '\n' {
		b = b[:n-1]
	}
	if n := len(b); n > 0 && b[n-1] == '\r' {
		b = b[:n-1]
	}
	return b
}
