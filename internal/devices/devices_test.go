package devices

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/pcap"
)

func TestCatalogMatchesTableII(t *testing.T) {
	if Count() != 27 {
		t.Fatalf("catalog has %d device-types, want 27 (Table II)", Count())
	}
	names := Names()
	if len(names) != 27 {
		t.Fatalf("Names() returned %d entries", len(names))
	}
	// Fig. 5 order spot checks.
	if names[0] != "Aria" {
		t.Errorf("first type = %s, want Aria", names[0])
	}
	if names[26] != "iKettle2" {
		t.Errorf("last type = %s, want iKettle2", names[26])
	}

	seenMAC := make(map[packet.MAC]string)
	seenIP := make(map[packet.IP4]string)
	for _, name := range names {
		p, err := Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", name, err)
		}
		if p.Model == "" {
			t.Errorf("%s: empty model", name)
		}
		if !p.Conn.WiFi && !p.Conn.ZigBee && !p.Conn.Ethernet && !p.Conn.ZWave && !p.Conn.Other {
			t.Errorf("%s: no connectivity flags", name)
		}
		if prev, dup := seenMAC[p.MAC]; dup {
			t.Errorf("%s and %s share MAC %s", name, prev, p.MAC)
		}
		seenMAC[p.MAC] = name
		if prev, dup := seenIP[p.IP]; dup {
			t.Errorf("%s and %s share IP %s", name, prev, p.IP)
		}
		seenIP[p.IP] = name
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("NestThermostat"); err == nil {
		t.Error("Lookup of unknown type succeeded")
	}
}

func TestSortedNames(t *testing.T) {
	ns := SortedNames()
	for i := 1; i < len(ns); i++ {
		if ns[i-1] >= ns[i] {
			t.Fatalf("SortedNames not sorted at %d: %s >= %s", i, ns[i-1], ns[i])
		}
	}
}

func TestConfusionGroups(t *testing.T) {
	groups := ConfusionGroups()
	if len(groups) != 4 {
		t.Fatalf("got %d confusion groups, want 4 (Table III)", len(groups))
	}
	total := 0
	for _, g := range groups {
		total += len(g)
		for _, name := range g {
			if _, err := Lookup(name); err != nil {
				t.Errorf("group member %s not in catalog", name)
			}
			if got := GroupOf(name); len(got) != len(g) {
				t.Errorf("GroupOf(%s) = %v, want %v", name, got, g)
			}
		}
	}
	if total != 10 {
		t.Errorf("confusion groups cover %d types, want 10", total)
	}
	if GroupOf("HueBridge") != nil {
		t.Error("HueBridge reported in a confusion group")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	env := DefaultEnv()
	p, err := Lookup("HueBridge")
	if err != nil {
		t.Fatal(err)
	}
	t1 := p.Generate(env, 42, 3)
	t2 := p.Generate(env, 42, 3)
	if len(t1.Packets) != len(t2.Packets) {
		t.Fatalf("same seed produced %d vs %d packets", len(t1.Packets), len(t2.Packets))
	}
	for i := range t1.Packets {
		w1, err1 := t1.Packets[i].Serialize()
		w2, err2 := t2.Packets[i].Serialize()
		if err1 != nil || err2 != nil {
			t.Fatalf("serialize: %v %v", err1, err2)
		}
		if !bytes.Equal(w1, w2) {
			t.Fatalf("packet %d differs between identical-seed runs", i)
		}
		if !t1.Packets[i].Timestamp.Equal(t2.Packets[i].Timestamp) {
			t.Fatalf("packet %d timestamp differs between identical-seed runs", i)
		}
	}
}

func TestGenerateRunsVary(t *testing.T) {
	env := DefaultEnv()
	traces, err := GenerateRuns("WeMoSwitch", env, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	// At least two runs must differ (retransmissions, optional phases).
	base := traces[0].Fingerprint()
	varied := false
	for _, tr := range traces[1:] {
		if !tr.Fingerprint().Equal(base) {
			varied = true
			break
		}
	}
	if !varied {
		t.Error("10 runs produced identical fingerprints; no stochastic variation")
	}
}

func TestAllTracesWellFormed(t *testing.T) {
	env := DefaultEnv()
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			p, err := Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			tr := p.Generate(env, 7, 0)
			if len(tr.Packets) < 6 {
				t.Fatalf("only %d packets", len(tr.Packets))
			}
			f := tr.Fingerprint()
			if f.Len() < 5 {
				t.Errorf("fingerprint too short: %v", f)
			}
			if f.UniqueCount() < 5 {
				t.Errorf("too few unique vectors: %v", f)
			}

			// Every packet must serialize and come from the device MAC.
			last := time.Time{}
			for i, pk := range tr.Packets {
				if _, err := pk.Serialize(); err != nil {
					t.Fatalf("packet %d: %v", i, err)
				}
				if pk.Eth.Src != p.MAC {
					t.Fatalf("packet %d sent from %s, want %s", i, pk.Eth.Src, p.MAC)
				}
				if pk.Timestamp.Before(last) {
					t.Fatalf("packet %d timestamp goes backwards", i)
				}
				// Gaps must stay under the gateway's idle threshold so
				// setup-end detection does not truncate the capture.
				if i > 0 {
					if gap := pk.Timestamp.Sub(last); gap >= 9*time.Second {
						t.Fatalf("packet %d follows a %v gap", i, gap)
					}
				}
				last = pk.Timestamp
			}
		})
	}
}

func TestTraceDurationRealistic(t *testing.T) {
	env := DefaultEnv()
	for _, name := range []string{"HueBridge", "Aria", "SmarterCoffee"} {
		p, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		d := 0 * time.Second
		tr := p.Generate(env, 3, 0)
		d = tr.Duration()
		if d < 2*time.Second || d > 3*time.Minute {
			t.Errorf("%s setup duration = %v, want between 2s and 3m", name, d)
		}
	}
}

func TestWritePCAPRoundTrip(t *testing.T) {
	env := DefaultEnv()
	p, err := Lookup("D-LinkCam")
	if err != nil {
		t.Fatal(err)
	}
	tr := p.Generate(env, 5, 1)
	var buf bytes.Buffer
	if err := tr.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := pcap.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(tr.Packets) {
		t.Fatalf("pcap has %d records, want %d", len(recs), len(tr.Packets))
	}
	// Decoding the pcap must reproduce the identical fingerprint.
	pkts := make([]*packet.Packet, len(recs))
	for i, rec := range recs {
		pk, err := packet.Decode(rec.Data, rec.Timestamp)
		if err != nil {
			t.Fatalf("decoding record %d: %v", i, err)
		}
		pkts[i] = pk
	}
	rt := Trace{Type: tr.Type, Packets: pkts}
	if !rt.Fingerprint().Equal(tr.Fingerprint()) {
		t.Error("fingerprint changed across pcap round-trip")
	}
}

func TestGenerateDataset(t *testing.T) {
	env := DefaultEnv()
	ds, err := GenerateDataset(env, 11, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Total() != 27*4 {
		t.Fatalf("dataset total = %d, want %d", ds.Total(), 27*4)
	}
	for name, prints := range ds {
		if len(prints) != 4 {
			t.Errorf("%s has %d fingerprints, want 4", name, len(prints))
		}
	}
}

func TestConfusablePairsShareBehaviour(t *testing.T) {
	// Twin types share a script, so the distinct-vector vocabulary of one
	// should be (nearly) contained in many runs of its twin.
	env := DefaultEnv()
	a, err := GenerateRuns("TP-LinkPlugHS110", env, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateRuns("TP-LinkPlugHS100", env, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	vocab := make(map[string]bool)
	for _, tr := range b {
		f := tr.Fingerprint()
		for i := 0; i < f.Len(); i++ {
			vocab[f.At(i).String()] = true
		}
	}
	missing := 0
	total := 0
	for _, tr := range a {
		f := tr.Fingerprint()
		for i := 0; i < f.Len(); i++ {
			total++
			if !vocab[f.At(i).String()] {
				missing++
			}
		}
	}
	if frac := float64(missing) / float64(total); frac > 0.05 {
		t.Errorf("%.1f%% of HS110 vectors unseen in HS100 runs; twins should overlap", 100*frac)
	}
}

func TestDistinctTypesDiffer(t *testing.T) {
	// Types outside confusion groups must produce clearly different
	// fixed fingerprints from each other.
	env := DefaultEnv()
	names := []string{"Aria", "HueBridge", "SmarterCoffee", "MAXGateway", "Withings"}
	prints := make(map[string][]float64)
	for _, n := range names {
		p, err := Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		prints[n] = p.Generate(env, 1, 0).Fingerprint().Fixed()
	}
	for i, a := range names {
		for _, b := range names[i+1:] {
			diff := 0
			for k := range prints[a] {
				if prints[a][k] != prints[b][k] {
					diff++
				}
			}
			if diff < 10 {
				t.Errorf("%s and %s differ in only %d / 276 features", a, b, diff)
			}
		}
	}
}

func TestGenerateStandby(t *testing.T) {
	env := DefaultEnv()
	p, err := Lookup("Aria")
	if err != nil {
		t.Fatal(err)
	}
	tr := p.GenerateStandby(env, 1, 0, 10)
	if len(tr.Packets) < 10 {
		t.Fatalf("standby trace has %d packets, want >= 10", len(tr.Packets))
	}
	for i, pk := range tr.Packets {
		if pk.Eth.Src != p.MAC {
			t.Fatalf("standby packet %d from wrong MAC", i)
		}
	}
	// Standby fingerprints must still be type-specific: two types differ.
	q, err := Lookup("HueBridge")
	if err != nil {
		t.Fatal(err)
	}
	tq := q.GenerateStandby(env, 1, 0, 10)
	if tr.Fingerprint().Equal(tq.Fingerprint()) {
		t.Error("standby fingerprints of different types identical")
	}
}

func TestCloudIPStable(t *testing.T) {
	a := CloudIP("x.example.com")
	b := CloudIP("x.example.com")
	c := CloudIP("y.example.com")
	if a != b {
		t.Error("CloudIP not deterministic")
	}
	if a == c {
		t.Error("CloudIP collides for different hosts")
	}
	if a[0] != 52 {
		t.Errorf("CloudIP prefix = %d, want 52", a[0])
	}
	for _, o := range a[1:] {
		if o == 0 || o == 255 {
			t.Errorf("CloudIP octet %d out of safe range", o)
		}
	}
}
