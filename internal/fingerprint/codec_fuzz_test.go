package fingerprint

import (
	"encoding/base64"
	"math/rand"
	"testing"

	"repro/internal/features"
)

// randomMatrix builds a pseudo-random F matrix: rows rows of full-range
// int32 features (negative values exercise the zigzag path).
func randomMatrix(rng *rand.Rand, rows int) *Fingerprint {
	vs := make([]features.Vector, rows)
	for i := range vs {
		for j := range vs[i] {
			switch rng.Intn(4) {
			case 0:
				vs[i][j] = int32(rng.Intn(3)) // the common small values
			case 1:
				vs[i][j] = -int32(rng.Intn(128))
			default:
				vs[i][j] = int32(rng.Uint32()) // full range, either sign
			}
		}
	}
	return FromVectors(vs)
}

// TestPackedRoundTripRandomMatrices drives Pack/Unpack over many random
// F matrices: the decode must reproduce the matrix bit-for-bit.
func TestPackedRoundTripRandomMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		fp := randomMatrix(rng, rng.Intn(40))
		packed, err := Pack(fp)
		if err != nil {
			t.Fatalf("matrix %d: Pack: %v", i, err)
		}
		got, err := Unpack(packed)
		if err != nil {
			t.Fatalf("matrix %d: Unpack: %v", i, err)
		}
		if !got.Equal(fp) {
			t.Fatalf("matrix %d (%d rows): round-trip mismatch", i, fp.Len())
		}
	}
}

// TestUnpackRejectsCorruptInputs holds Unpack to its error contract on
// hand-built hostile inputs: every one must error, none may panic.
func TestUnpackRejectsCorruptInputs(t *testing.T) {
	valid, err := Pack(randomMatrix(rand.New(rand.NewSource(9)), 4))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := base64.StdEncoding.DecodeString(valid)
	cases := map[string]string{
		"bad base64":          "!!!not-base64!!!",
		"truncated base64":    valid[:len(valid)-2] + "=",
		"truncated varint":    base64.StdEncoding.EncodeToString([]byte{0x80}),
		"partial row":         base64.StdEncoding.EncodeToString(raw[:3]),
		"overflowing varint":  base64.StdEncoding.EncodeToString([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}),
		"varint past 5 bytes": base64.StdEncoding.EncodeToString([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x7f}),
	}
	for name, in := range cases {
		if _, err := Unpack(in); err == nil {
			t.Errorf("%s: Unpack accepted corrupt input %q", name, in)
		}
	}
}

// FuzzUnpack feeds arbitrary strings to the packed-matrix decoder. The
// invariant is panic-freedom plus decode/encode closure: whatever
// Unpack accepts must survive a Pack/Unpack round trip unchanged.
func FuzzUnpack(f *testing.F) {
	rng := rand.New(rand.NewSource(11))
	for _, rows := range []int{0, 1, 5, 30} {
		packed, err := Pack(randomMatrix(rng, rows))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(packed)
		if len(packed) > 4 {
			f.Add(packed[:len(packed)/2]) // truncation mid-stream
		}
	}
	f.Add("")
	f.Add("not base64 at all")
	f.Add(base64.StdEncoding.EncodeToString([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0x0f}))
	f.Fuzz(func(t *testing.T, packed string) {
		fp, err := Unpack(packed)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		re, err := Pack(fp)
		if err != nil {
			t.Fatalf("Pack of just-unpacked matrix failed: %v", err)
		}
		again, err := Unpack(re)
		if err != nil {
			t.Fatalf("re-Unpack failed: %v", err)
		}
		if !again.Equal(fp) {
			t.Fatal("Pack/Unpack not a fixpoint on accepted input")
		}
	})
}

// FuzzPackRoundTrip builds F matrices from raw fuzz bytes and checks
// the encode side: every well-formed matrix must round-trip exactly.
func FuzzPackRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 250, 251, 252, 253})
	f.Add(make([]byte, 4*features.NumFeatures))
	f.Fuzz(func(t *testing.T, data []byte) {
		rows := len(data) / (4 * features.NumFeatures)
		if rows > 64 {
			rows = 64
		}
		vs := make([]features.Vector, rows)
		for i := range vs {
			for j := range vs[i] {
				off := (i*features.NumFeatures + j) * 4
				vs[i][j] = int32(uint32(data[off]) | uint32(data[off+1])<<8 |
					uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
			}
		}
		fp := FromVectors(vs)
		packed, err := Pack(fp)
		if err != nil {
			t.Fatalf("Pack: %v", err)
		}
		got, err := Unpack(packed)
		if err != nil {
			t.Fatalf("Unpack of freshly packed matrix: %v", err)
		}
		if !got.Equal(fp) {
			t.Fatal("round-trip mismatch")
		}
	})
}
