package packet

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// fuzzSeedFrames returns a handful of well-formed wire frames covering
// the decoder's layer combinations, for seeding corpus mutation.
func fuzzSeedFrames(f *testing.F) [][]byte {
	f.Helper()
	gw := MAC{0x02, 0x53, 0x47, 0x57, 0x00, 0x01}
	bld := NewBuilder(MAC{0x02, 0x01, 0x01, 0x01, 0x01, 0x01})
	bld.SetIP(IP4{192, 168, 1, 10})
	ts := time.Unix(1700000000, 0)
	pkts := []*Packet{
		bld.ARPProbe(IP4{192, 168, 1, 10}, ts),
		bld.EAPOLStart(gw, ts),
		bld.DHCPDiscoverPkt(0x1234, "fuzz-device", ts),
		bld.TCPSynPkt(gw, IP4{93, 184, 216, 34}, 49152, 443, ts),
		bld.DNSQueryPkt(gw, IP4{192, 168, 1, 1}, 40000, 7, "example.com", 1, ts),
		bld.IGMPJoinPkt(IP4{224, 0, 0, 251}, ts),
		bld.NeighborSolicitPkt(ts),
		bld.MLDv2ReportPkt(ts, SolicitedNodeIP6(LinkLocalIP6(bld.MAC()))),
		bld.LLCTestPkt(gw, 0xaa, 16, ts),
	}
	var out [][]byte
	for _, p := range pkts {
		wire, err := p.Serialize()
		if err != nil {
			f.Fatal(err)
		}
		out = append(out, wire)
	}
	return out
}

// FuzzDecode feeds arbitrary bytes to both decode paths and asserts the
// shared contract: corrupt input yields an error, never a panic, and the
// reusing DecodeBuf path agrees bit-for-bit with the allocating Decode.
func FuzzDecode(f *testing.F) {
	rng := rand.New(rand.NewSource(23))
	for _, wire := range fuzzSeedFrames(f) {
		f.Add(wire)
		f.Add(wire[:len(wire)/2]) // truncated mid-frame
		flipped := append([]byte(nil), wire...)
		flipped[rng.Intn(len(flipped))] ^= 0x40 // corrupt one byte
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add(make([]byte, 13)) // one short of an Ethernet header
	var buf DecodeBuf
	ts := time.Unix(1700000000, 0)
	f.Fuzz(func(t *testing.T, data []byte) {
		fresh, freshErr := Decode(data, ts)
		reused, reusedErr := buf.Decode(data, ts)
		if (freshErr == nil) != (reusedErr == nil) {
			t.Fatalf("Decode err=%v but DecodeBuf err=%v", freshErr, reusedErr)
		}
		if freshErr != nil {
			return
		}
		if !reflect.DeepEqual(fresh, reused) {
			t.Fatalf("decode paths diverge:\nDecode:    %+v\nDecodeBuf: %+v", fresh, reused)
		}
	})
}
