// Quickstart: generate a device's setup capture, train the two-stage
// identification pipeline, and identify the device — the minimal tour of
// the public pieces (devices → fingerprint → core).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/ml"
)

func main() {
	log.SetFlags(0)
	env := devices.DefaultEnv()

	// 1. Build a training corpus: 10 setup captures for every one of the
	//    27 Table II device-types (the paper used 20).
	fmt.Println("generating training corpus (27 types × 10 setup runs)…")
	corpus, err := devices.GenerateDataset(env, 1, 10)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Train one Random Forest classifier per device-type.
	fmt.Println("training one classifier per device-type…")
	bank, err := core.Train(core.BankConfig{
		Forest: ml.ForestConfig{Trees: 50},
		Seed:   7,
	}, corpus)
	if err != nil {
		log.Fatal(err)
	}

	// 3. A Hue Bridge joins the network: capture its setup traffic.
	hue, err := devices.Lookup("HueBridge")
	if err != nil {
		log.Fatal(err)
	}
	trace := hue.Generate(env, 4242, 0) // unseen seed = unseen capture
	fp := trace.Fingerprint()
	fmt.Printf("\nnew device %s sent %d packets during setup\n", trace.MAC, len(trace.Packets))
	fmt.Printf("fingerprint: %s (F' is a %d-dim vector)\n", fp, len(fp.Fixed()))

	// 4. Identify it with the two-stage pipeline.
	res := bank.Identify(fp)
	if !res.Known {
		fmt.Println("verdict: unknown device-type (strict isolation)")
		return
	}
	fmt.Printf("\nidentified as %s via the %s stage\n", res.Type, res.Stage)
	fmt.Printf("classifiers that accepted: %v\n", res.Accepted)
	if res.Scores != nil {
		fmt.Println("dissimilarity scores:")
		for typ, s := range res.Scores {
			fmt.Printf("  s(%s) = %.3f\n", typ, s)
		}
	}
}
