package experiments

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/fingerprint"
	"repro/internal/gateway"
	"repro/internal/iotssp"
	"repro/internal/ml"
	"repro/internal/vulndb"
)

// DistributedConfig parameterizes the distributed classifier-bank
// experiment: one logical ShardedBank whose shards are split between
// the service process and a shard server reached over the IoTSSP wire
// protocol, validated against an all-local twin.
type DistributedConfig struct {
	// Types is the number of enrolled device-types (0 means 9). It must
	// stay below the full catalog: the next catalog type is the canary
	// enrolment for the remote-invalidation check.
	Types int
	// Runs is the number of training fingerprints per type (0 means 8).
	Runs int
	// Trees is the per-type forest size (0 means 100).
	Trees int
	// ProbeModels is the number of distinct probe fingerprints per type
	// the workload draws from (0 means 2).
	ProbeModels int
	// Requests is the total identification requests replayed per phase
	// (0 means 1024: long enough that the v4 dictionary's one-time
	// seeding misses amortize out of the steady-state bytes/verdict).
	Requests int
	// Gateways is the number of concurrent gateway clients (0 means 2),
	// InFlight each gateway's concurrent requests (0 means 8).
	Gateways int
	InFlight int
	// Shards is the logical bank's shard count (0 means 2). One shard —
	// the one the least-loaded router will hand the canary enrolment,
	// index Types mod Shards — is served remotely; the rest stay
	// in-process.
	Shards int
	// BatchSize, FlushInterval and Workers tune the front server's
	// dispatcher as in ServiceConfig. CacheSize sizes the verdict cache
	// of the invalidation phase (0 selects the default); the two timed
	// phases always run uncached so every request exercises the bank —
	// and therefore the wire — rather than the front cache.
	BatchSize     int
	FlushInterval time.Duration
	CacheSize     int
	Workers       int
	// NoKill disables the mid-run remote-shard restart drill; NoRestart
	// leaves the killed shard down (which also skips the enrolment
	// phase — the canary's shard would be unreachable).
	NoKill    bool
	NoRestart bool
	// Wire selects the v4 wire compression for every client transport in
	// the run — the gateway pools toward the front server and the remote
	// shard toward its shard server. When it is on, the run adds an
	// uncompressed twin phase and reports the measured gain.
	Wire iotssp.WireMode
	// MinWireGain, with Wire on, fails the run unless the uncompressed
	// twin's steady-state bytes/verdict divided by the compressed run's
	// reaches it (0 reports the gain without asserting).
	MinWireGain float64
	// Seed drives dataset generation, training and workload sampling.
	Seed int64
}

func (c DistributedConfig) withDefaults() (DistributedConfig, error) {
	if c.Types == 0 {
		c.Types = 9
	}
	if c.Types < 2 || c.Types >= len(devices.Names()) {
		return c, fmt.Errorf("experiments: distributed Types must be in [2, %d) to leave a canary type", len(devices.Names()))
	}
	if c.Runs == 0 {
		c.Runs = 8
	}
	if c.Trees == 0 {
		c.Trees = 100
	}
	if c.ProbeModels == 0 {
		c.ProbeModels = 2
	}
	if c.Requests == 0 {
		c.Requests = 1024
	}
	if c.Gateways == 0 {
		c.Gateways = 2
	}
	if c.InFlight == 0 {
		c.InFlight = 8
	}
	if c.Shards == 0 {
		c.Shards = 2
	}
	if c.Shards < 1 || c.Shards > c.Types {
		return c, fmt.Errorf("experiments: distributed Shards must be in [1, Types]")
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 500 * time.Microsecond
	}
	if c.CacheSize == 0 {
		c.CacheSize = iotssp.DefaultCacheSize
	}
	return c, nil
}

// phase shapes the experiment's replay phases.
func (c DistributedConfig) phase() wirePhase {
	return wirePhase{Requests: c.Requests, Gateways: c.Gateways, InFlight: c.InFlight, Seed: c.Seed, Wire: c.Wire}
}

// DistributedResult is the outcome of the distributed-bank experiment.
type DistributedResult struct {
	EnrolledTypes int
	Shards        int
	// RemoteShard is the shard index served across the wire.
	RemoteShard int
	Requests    int
	Gateways    int

	// BaselinePerSec is the all-local sharded bank; DistributedPerSec
	// the same workload with one shard behind the wire (including the
	// mid-run shard restart). Overhead is baseline/distributed — how
	// much the wire hop costs on one machine (on real fleets the remote
	// shard brings its own cores).
	BaselinePerSec    float64
	DistributedPerSec float64
	Overhead          float64

	// Mismatches counts verdicts that differed from the all-local
	// baseline (the bit-equality assertion fails unless zero). Lost
	// counts requests that returned no verdict.
	Mismatches int
	Lost       int

	// ShardKilled reports whether the remote shard was stopped mid-run;
	// Restarted whether it came back.
	ShardKilled bool
	Restarted   bool

	// P50/P99 are the distributed phase's request latencies.
	P50, P99 time.Duration

	// BytesPerVerdict is the distributed phase's measured shard-plane
	// steady-state wire cost per verdict (both directions of the remote
	// shard's transport, off the lineconn byte counters, handshake and
	// state-transfer bytes carved out).
	BytesPerVerdict float64

	// Wire is the run's wire-compression mode. With it on, the run adds
	// an uncompressed twin phase: BytesPerVerdictOff is that twin's
	// cost, WireGain the off/on ratio (how many times fewer bytes each
	// verdict costs compressed), and DictHitRate the fingerprint
	// dictionaries' hit rate in the compressed phase.
	Wire               iotssp.WireMode
	BytesPerVerdictOff float64
	WireGain           float64
	DictHitRate        float64

	// Remote-enrolment invalidation check: enrolling the canary through
	// the logical bank must route it to the remote shard (CanaryShard ==
	// RemoteShard), and its version bump — observed over the wire — must
	// invalidate exactly the dependent verdicts.
	CanaryType        string
	CanaryShard       int
	DependentProbes   int
	IndependentProbes int

	// Metrics is the run's single JSON stats snapshot.
	Metrics *MetricsSnapshot
}

// buildWireWorkload generates the dataset, training partition and
// replay workload shared by the distributed and replicated experiments
// (the fleet experiment's shapes, reused): `types` enrolled types with
// `runs` training prints each, `probeModels` held-out probes per type,
// a `requests`-long replay schedule, and the next catalog type as the
// canary enrolment.
func buildWireWorkload(types, runs, probeModels, requests int, seed int64) (map[string][]*fingerprint.Fingerprint, *serviceWorkload, string, []*fingerprint.Fingerprint, error) {
	env := devices.DefaultEnv()
	ds, err := devices.GenerateDataset(env, seed, runs+probeModels)
	if err != nil {
		return nil, nil, "", nil, err
	}
	names := devices.Names()[:types]
	canary := devices.Names()[types]
	train := make(map[string][]*fingerprint.Fingerprint, len(names))
	var probes []*fingerprint.Fingerprint
	for _, name := range names {
		prints := ds[name]
		train[name] = prints[:runs]
		probes = append(probes, prints[runs:]...)
	}
	w := &serviceWorkload{probes: probes}
	w.model = make([]int, requests)
	w.macs = make([]string, requests)
	state := uint64(seed)*6364136223846793005 + 1442695040888963407
	for i := range w.model {
		state = state*6364136223846793005 + 1442695040888963407
		w.model[i] = int(state>>33) % len(probes)
		w.macs[i] = fmt.Sprintf("02:f5:%02x:%02x:%02x:%02x", (i>>24)&0xff, (i>>16)&0xff, (i>>8)&0xff, i&0xff)
	}
	return train, w, canary, ds[canary][:runs], nil
}

// wirePhase shapes one replayed load phase: how many requests, over how
// many gateway clients with how many in-flight slots each, at which
// wire-compression mode.
type wirePhase struct {
	Requests, Gateways, InFlight int
	Seed                         int64
	Wire                         iotssp.WireMode
}

// wireDrill is one mid-run intervention: Fn fires once the request
// cursor crosses After. Drills run in order on one goroutine, so a
// later drill never overtakes an earlier one.
type wireDrill struct {
	After int64
	Fn    func()
}

// third returns the conventional single-drill schedule: fire a third of
// the way into the phase.
func (c wirePhase) third(fn func()) []wireDrill {
	return []wireDrill{{After: int64(c.Requests / 3), Fn: fn}}
}

// runWirePhase replays the workload against one verdict server,
// recording every request's verdict in request order, and running each
// drill as the cursor crosses its threshold.
func runWirePhase(addr string, w *serviceWorkload, cfg wirePhase, drills []wireDrill) (time.Duration, []time.Duration, []iotssp.Response, []gateway.PoolStats, int) {
	pools := make([]*gateway.Pool, cfg.Gateways)
	for g := range pools {
		pools[g] = gateway.NewPool(addr, gateway.PoolConfig{
			Conns:        2,
			Timeout:      30 * time.Second,
			MaxRetries:   3,
			RetryBackoff: 2 * time.Millisecond,
			Seed:         cfg.Seed + int64(g),
			Wire:         cfg.Wire,
		})
	}
	defer func() {
		for _, p := range pools {
			p.Close()
		}
	}()

	var cursor atomic.Int64
	var lost atomic.Int64
	verdicts := make([]iotssp.Response, cfg.Requests)
	drillDone := make(chan struct{})
	if len(drills) > 0 {
		go func() {
			defer close(drillDone)
			for _, d := range drills {
				for cursor.Load() < d.After {
					time.Sleep(200 * time.Microsecond)
				}
				d.Fn()
			}
		}()
	} else {
		close(drillDone)
	}

	lats := make([][]time.Duration, cfg.Gateways*cfg.InFlight)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < cfg.Gateways; g++ {
		for k := 0; k < cfg.InFlight; k++ {
			wg.Add(1)
			go func(g, slot int) {
				defer wg.Done()
				pool := pools[g]
				for {
					i := int(cursor.Add(1)) - 1
					if i >= len(w.model) {
						return
					}
					t0 := time.Now()
					resp, err := pool.Identify(context.Background(), w.macs[i], w.probes[w.model[i]])
					if err != nil || resp.MAC != w.macs[i] {
						lost.Add(1)
						continue
					}
					verdicts[i] = resp
					lats[slot] = append(lats[slot], time.Since(t0))
				}
			}(g, g*cfg.InFlight+k)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	<-drillDone

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	poolStats := make([]gateway.PoolStats, len(pools))
	for g, p := range pools {
		poolStats[g] = p.Counters()
	}
	return elapsed, all, verdicts, poolStats, int(lost.Load())
}

// mixedTopology deals the training set round-robin over shards
// partitions and serves exactly one — remoteIdx, with members replicas —
// across the wire.
func mixedTopology(train map[string][]*fingerprint.Fingerprint, shards, remoteIdx, members int) controlplane.Topology {
	names := make([]string, 0, len(train))
	for name := range train {
		names = append(names, name)
	}
	parts := make([]controlplane.PartitionSpec, 0, shards)
	for s, types := range controlplane.RoundRobin(names, shards) {
		spec := controlplane.PartitionSpec{Types: types, Local: s != remoteIdx}
		if s == remoteIdx {
			spec.Members = members
		}
		parts = append(parts, spec)
	}
	return controlplane.Topology{Partitions: parts}
}

// RunDistributed validates and measures the cross-process classifier
// bank:
//
//   - Baseline: the all-local ShardedBank behind one verdict server —
//     the PR 3 configuration.
//   - Distributed: an identically trained partition where one shard
//     (index Types mod Shards) lives behind a shard-serving IoTSSP
//     replica and is reached through a RemoteShard client. The same
//     workload must produce bit-equal verdicts. A third of the way in,
//     the shard server is killed and revived; the remote shard's
//     reconnect/retry machinery must carry every request across the
//     restart — zero lost verdicts, still bit-equal.
//   - Remote invalidation: a fresh verdict cache is warmed over the
//     mixed bank, the canary type is enrolled through the cluster's
//     control plane (least-loaded routing hands it to the remote
//     shard), and the version bump observed over the wire must
//     invalidate exactly the dependent cache entries, counted by the
//     Invalidations counter.
//
// Both serving stacks are assembled through controlplane.Cluster, and
// both timed phases run with the verdict cache disabled so every
// request crosses the bank (and the wire), not the front cache.
func RunDistributed(cfg DistributedConfig) (*DistributedResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	train, w, canary, canaryPrints, err := buildWireWorkload(cfg.Types, cfg.Runs, cfg.ProbeModels, cfg.Requests, cfg.Seed)
	if err != nil {
		return nil, err
	}
	coreCfg := core.BankConfig{
		Forest: ml.ForestConfig{Trees: cfg.Trees},
		Seed:   cfg.Seed,
	}

	remoteIdx := cfg.Types % cfg.Shards
	res := &DistributedResult{
		EnrolledTypes: cfg.Types,
		Shards:        cfg.Shards,
		RemoteShard:   remoteIdx,
		Requests:      cfg.Requests,
		Gateways:      cfg.Gateways,
		Wire:          cfg.Wire,
		CanaryType:    canary,
		CanaryShard:   -1,
	}
	scfg := iotssp.ServerConfig{
		BatchSize:     cfg.BatchSize,
		FlushInterval: cfg.FlushInterval,
		Workers:       cfg.Workers,
	}

	// Phase 1 — all-local baseline. Training is deterministic in
	// (config, data), so the two clusters' verdicts must agree
	// bit-for-bit.
	baseCl, err := controlplane.Assemble(controlplane.ClusterConfig{
		Core:      coreCfg,
		Server:    scfg,
		CacheSize: -1,
		DB:        vulndb.Seeded(),
	}, localTopology(train, cfg.Shards), train)
	if err != nil {
		return nil, err
	}
	baseTypes := baseCl.Bank().Types()
	baseElapsed, _, baseVerdicts, _, baseLost := runWirePhase(baseCl.Addr(), w, cfg.phase(), nil)
	baseCl.Close()
	if baseLost > 0 {
		return nil, fmt.Errorf("baseline phase lost %d verdicts with no failure injected", baseLost)
	}
	res.BaselinePerSec = float64(cfg.Requests) / baseElapsed.Seconds()

	// Phase 2 — the mixed local/remote cluster, with the shard restart
	// drill.
	cl, err := controlplane.Assemble(controlplane.ClusterConfig{
		Core:   coreCfg,
		Server: scfg,
		Shard: iotssp.RemoteShardConfig{
			RetryBackoff: 2 * time.Millisecond,
			MaxBackoff:   50 * time.Millisecond,
			MaxRetries:   40,
			Seed:         cfg.Seed + 101,
			Wire:         cfg.Wire,
		},
		CacheSize: -1,
		DB:        vulndb.Seeded(),
	}, mixedTopology(train, cfg.Shards, remoteIdx, 1), train)
	if err != nil {
		return nil, err
	}
	defer cl.Close()
	if got := cl.Bank().Types(); !reflect.DeepEqual(got, baseTypes) {
		return nil, fmt.Errorf("mixed bank reassembled order %v, want %v", got, baseTypes)
	}

	var drills []wireDrill
	if !cfg.NoKill {
		shardRep := cl.Member(remoteIdx, 0)
		drills = cfg.phase().third(func() {
			res.ShardKilled = true
			shardRep.Stop()
			if cfg.NoRestart {
				return
			}
			time.Sleep(100 * time.Millisecond)
			if err := shardRep.Start(); err == nil {
				res.Restarted = true
			}
		})
	}
	elapsed, lats, verdicts, poolStats, lost := runWirePhase(cl.Addr(), w, cfg.phase(), drills)
	res.DistributedPerSec = float64(cfg.Requests) / elapsed.Seconds()
	if res.DistributedPerSec > 0 {
		res.Overhead = res.BaselinePerSec / res.DistributedPerSec
	}
	res.Lost = lost

	for i := range verdicts {
		if !verdictsEqual(baseVerdicts[i], verdicts[i]) {
			res.Mismatches++
		}
	}
	res.P50, res.P99 = latPercentiles(lats)
	res.Metrics = &MetricsSnapshot{Experiment: "distributed", Components: cl.Snapshots()}
	for _, ps := range poolStats {
		res.Metrics.Components = append(res.Metrics.Components, ps.Snapshot())
	}
	res.BytesPerVerdict = res.Metrics.ComputeBytesPerVerdict(cfg.Requests)

	if lost > 0 {
		return res, fmt.Errorf("distributed bank lost %d of %d verdicts across the shard restart (want zero: the remote shard must retry through it)", lost, cfg.Requests)
	}
	if res.Mismatches > 0 {
		return res, fmt.Errorf("%d of %d distributed verdicts differ from the all-local baseline (want bit-equal)", res.Mismatches, cfg.Requests)
	}
	if res.ShardKilled && !cfg.NoRestart && !res.Restarted {
		return res, fmt.Errorf("killed shard server failed to restart")
	}

	// Wire-off twin — with compression on, replay the same workload
	// against an identically trained mixed cluster speaking the plain
	// wire (no drills: the twin prices the steady state). Its verdicts
	// must stay bit-equal to the baseline — compression is lossless or
	// it is a bug — and the off/on bytes-per-verdict ratio is the gain
	// MinWireGain asserts.
	if cfg.Wire != iotssp.WireOff {
		res.DictHitRate = res.Metrics.DictHitRate
		offCl, err := controlplane.Assemble(controlplane.ClusterConfig{
			Core:   coreCfg,
			Server: scfg,
			Shard: iotssp.RemoteShardConfig{
				RetryBackoff: 2 * time.Millisecond,
				MaxBackoff:   50 * time.Millisecond,
				MaxRetries:   40,
				Seed:         cfg.Seed + 103,
			},
			CacheSize: -1,
			DB:        vulndb.Seeded(),
		}, mixedTopology(train, cfg.Shards, remoteIdx, 1), train)
		if err != nil {
			return res, err
		}
		offPhase := cfg.phase()
		offPhase.Wire = iotssp.WireOff
		offPhase.Seed = cfg.Seed + 103
		_, _, offVerdicts, _, offLost := runWirePhase(offCl.Addr(), w, offPhase, nil)
		offMetrics := &MetricsSnapshot{Experiment: "distributed-wire-off", Components: offCl.Snapshots()}
		offCl.Close()
		if offLost > 0 {
			return res, fmt.Errorf("wire-off twin lost %d verdicts with no failure injected", offLost)
		}
		for i := range offVerdicts {
			if !verdictsEqual(baseVerdicts[i], offVerdicts[i]) {
				return res, fmt.Errorf("wire-off twin verdict %d differs from the baseline (want bit-equal)", i)
			}
		}
		res.BytesPerVerdictOff = offMetrics.ComputeBytesPerVerdict(cfg.Requests)
		if res.BytesPerVerdict > 0 {
			res.WireGain = res.BytesPerVerdictOff / res.BytesPerVerdict
		}
		if cfg.MinWireGain > 0 && res.WireGain < cfg.MinWireGain {
			return res, fmt.Errorf("wire compression gain %.2fx (off %.1f B/verdict, %s %.1f B/verdict) below the required %.1fx",
				res.WireGain, res.BytesPerVerdictOff, cfg.Wire, res.BytesPerVerdict, cfg.MinWireGain)
		}
	}

	// Phase 3 — remote enrolment drives shard-scoped cache
	// invalidation. Skipped when the drill left the remote shard down.
	if res.ShardKilled && cfg.NoRestart {
		return res, nil
	}
	invSvc := cl.AuxService(cfg.CacheSize)
	shard, dependent, independent, err := checkShardScopedInvalidation(invSvc, cl, w, canary, canaryPrints)
	res.CanaryShard = shard
	res.DependentProbes = dependent
	res.IndependentProbes = independent
	if err != nil {
		return res, err
	}
	if shard != remoteIdx {
		return res, fmt.Errorf("canary %q enrolled into shard %d, want the remote shard %d (least-loaded routing)", canary, shard, remoteIdx)
	}
	if got := cl.MemberBank(remoteIdx, 0).Version(); got != cl.Bank().Versions()[remoteIdx] {
		return res, fmt.Errorf("remote version cache (%d) diverged from the served shard (%d)", cl.Bank().Versions()[remoteIdx], got)
	}
	return res, nil
}

// RenderDistributed formats the distributed-bank experiment for the
// terminal.
func (r *DistributedResult) RenderDistributed() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Distributed classifier bank — %d types over %d shards (shard %d remote), %d requests, %d gateways\n",
		r.EnrolledTypes, r.Shards, r.RemoteShard, r.Requests, r.Gateways)
	fmt.Fprintf(&sb, "%-36s %12s\n", "mode", "requests/s")
	fmt.Fprintf(&sb, "%-36s %12.1f\n", "all-local sharded bank", r.BaselinePerSec)
	fmt.Fprintf(&sb, "%-36s %12.1f  (%.2fx wire overhead)\n", "one shard across the wire", r.DistributedPerSec, r.Overhead)
	fmt.Fprintf(&sb, "verdicts: %d mismatches vs baseline (bit-equal), %d lost\n", r.Mismatches, r.Lost)
	if r.ShardKilled {
		revived := "left down"
		if r.Restarted {
			revived = "revived; retries carried every request across the outage"
		}
		fmt.Fprintf(&sb, "failure drill: remote shard killed mid-run (%s)\n", revived)
	}
	fmt.Fprintf(&sb, "latency p50 %s  p99 %s\n", r.P50, r.P99)
	if r.BytesPerVerdict > 0 {
		fmt.Fprintf(&sb, "shard wire cost: %.1f bytes/verdict (steady state)\n", r.BytesPerVerdict)
	}
	if r.Wire != iotssp.WireOff && r.WireGain > 0 {
		fmt.Fprintf(&sb, "wire compression (%s): %.1fx fewer bytes/verdict than the plain wire (%.1f vs %.1f), dict hit rate %.1f%%\n",
			r.Wire, r.WireGain, r.BytesPerVerdict, r.BytesPerVerdictOff, 100*r.DictHitRate)
	}
	if r.CanaryShard >= 0 {
		fmt.Fprintf(&sb, "remote invalidation: enrolling %q landed on remote shard %d and invalidated %d dependent verdicts, kept %d\n",
			r.CanaryType, r.CanaryShard, r.DependentProbes, r.IndependentProbes)
	}
	if r.Metrics != nil {
		fmt.Fprintf(&sb, "metrics: %s\n", r.Metrics.JSON())
	}
	return sb.String()
}
