// Package iotssp implements the IoT Security Service (paper §III-B): the
// cloud-side component that receives device fingerprints from Security
// Gateways, identifies device-types with the classifier bank, assesses
// their vulnerability, and returns the isolation level to enforce.
//
// The service speaks a JSON-lines protocol over TCP: one request object
// per line, one response object per line. It is stateless with respect
// to its clients — it stores nothing about gateways between requests, so
// gateways can reach it through an anonymizing transport.
package iotssp

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/enforce"
	"repro/internal/fingerprint"
	"repro/internal/vulndb"
)

// Request is one identification request from a Security Gateway.
type Request struct {
	// Fingerprint is the device's fingerprint report (MAC + F matrix).
	Fingerprint fingerprint.Report `json:"fingerprint"`
}

// Response is the service's answer.
type Response struct {
	// MAC echoes the device MAC from the request so the gateway can
	// correlate concurrent requests.
	MAC string `json:"mac"`
	// Known reports whether any classifier accepted the fingerprint.
	Known bool `json:"known"`
	// DeviceType is the identified type (empty if unknown).
	DeviceType string `json:"device_type,omitempty"`
	// Stage is the pipeline stage that decided ("classification",
	// "discrimination" or "none").
	Stage string `json:"stage"`
	// Level is the isolation level to enforce ("strict", "restricted",
	// "trusted").
	Level string `json:"level"`
	// PermittedEndpoints lists the cloud endpoints a restricted device
	// may contact, as dotted-quad strings.
	PermittedEndpoints []string `json:"permitted_endpoints,omitempty"`
	// Vulnerabilities lists the advisory IDs behind a restricted verdict.
	Vulnerabilities []string `json:"vulnerabilities,omitempty"`
	// NotifyUser is set when the device has flaws reachable over
	// channels the gateway cannot filter (Bluetooth, LTE, proprietary
	// radios): isolation is insufficient and the user should remove the
	// device (§III-C3). UncontrolledChannels names the channels.
	NotifyUser           bool     `json:"notify_user,omitempty"`
	UncontrolledChannels []string `json:"uncontrolled_channels,omitempty"`
	// Error is set when the request could not be processed.
	Error string `json:"error,omitempty"`
}

// ParseLevel converts a wire level name back to the enforcement type.
func ParseLevel(s string) (enforce.IsolationLevel, error) {
	switch s {
	case "strict":
		return enforce.Strict, nil
	case "restricted":
		return enforce.Restricted, nil
	case "trusted":
		return enforce.Trusted, nil
	default:
		return 0, fmt.Errorf("iotssp: unknown isolation level %q", s)
	}
}

// Service identifies fingerprints and maps device-types to isolation
// levels. It is safe for concurrent use.
type Service struct {
	bank *core.Bank
	db   *vulndb.DB
	// endpoints maps device-type to the permitted cloud endpoints used
	// for the Restricted level.
	endpoints map[string][]string
}

// NewService assembles a service from a trained bank, a vulnerability
// repository and the per-type permitted endpoints.
func NewService(bank *core.Bank, db *vulndb.DB, endpoints map[string][]string) *Service {
	eps := make(map[string][]string, len(endpoints))
	for t, list := range endpoints {
		eps[t] = append([]string(nil), list...)
	}
	return &Service{bank: bank, db: db, endpoints: eps}
}

// Handle processes one request.
func (s *Service) Handle(req Request) Response {
	mac, fp, err := fingerprint.UnmarshalReportStruct(req.Fingerprint)
	if err != nil {
		return Response{Error: err.Error()}
	}
	res := s.bank.Identify(fp)
	resp := Response{
		MAC:   mac,
		Known: res.Known,
		Stage: res.Stage.String(),
	}
	if !res.Known {
		resp.Level = enforce.Strict.String()
		return resp
	}
	resp.DeviceType = res.Type
	assessment := s.db.Assess(res.Type)
	level := assessment.Level()
	resp.Level = level.String()
	if level == enforce.Restricted {
		resp.PermittedEndpoints = append([]string(nil), s.endpoints[res.Type]...)
		for _, v := range assessment.Vulns {
			resp.Vulnerabilities = append(resp.Vulnerabilities, v.ID)
		}
	}
	if notify, channels := assessment.RequiresUserNotification(); notify {
		resp.NotifyUser = true
		resp.UncontrolledChannels = channels
	}
	return resp
}

// Server serves the JSON-lines protocol on a listener.
type Server struct {
	svc *Service

	mu     sync.Mutex
	lis    net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps a service for network serving.
func NewServer(svc *Service) *Server {
	return &Server{svc: svc, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on lis until Close is called. It blocks.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("iotssp: server closed")
	}
	s.lis = lis
	s.mu.Unlock()

	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("iotssp: accept: %w", err)
		}
		s.mu.Lock()
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			s.handleConn(conn)
		}()
	}
}

// handleConn processes JSON lines until the peer closes.
func (s *Server) handleConn(conn net.Conn) {
	scanner := bufio.NewScanner(conn)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	enc := json.NewEncoder(conn)
	for scanner.Scan() {
		var req Request
		resp := Response{}
		if err := json.Unmarshal(scanner.Bytes(), &req); err != nil {
			resp.Error = fmt.Sprintf("malformed request: %v", err)
		} else {
			resp = s.svc.Handle(req)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// Close stops the server and waits for in-flight connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	lis := s.lis
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	var err error
	if lis != nil {
		err = lis.Close()
	}
	s.wg.Wait()
	return err
}

// Client is a Security Gateway's connection to the IoT Security Service.
// Safe for concurrent use; requests are serialized over one connection.
type Client struct {
	addr    string
	timeout time.Duration

	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
}

// NewClient creates a client for the service at addr (host:port).
func NewClient(addr string) *Client {
	return &Client{addr: addr, timeout: 10 * time.Second}
}

// connectLocked dials if needed. Callers hold mu.
func (c *Client) connectLocked(ctx context.Context) error {
	if c.conn != nil {
		return nil
	}
	d := net.Dialer{}
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return fmt.Errorf("iotssp: dialing %s: %w", c.addr, err)
	}
	c.conn = conn
	c.br = bufio.NewReader(conn)
	return nil
}

// Close closes the client connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	c.br = nil
	return err
}

// Identify submits a fingerprint and returns the service's verdict.
func (c *Client) Identify(ctx context.Context, mac string, fp *fingerprint.Fingerprint) (Response, error) {
	report, err := fingerprint.MarshalReportStruct(mac, fp)
	if err != nil {
		return Response{}, err
	}
	body, err := json.Marshal(Request{Fingerprint: report})
	if err != nil {
		return Response{}, fmt.Errorf("iotssp: encoding request: %w", err)
	}
	body = append(body, '\n')

	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.connectLocked(ctx); err != nil {
		return Response{}, err
	}
	deadline := time.Now().Add(c.timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := c.conn.SetDeadline(deadline); err != nil {
		return Response{}, fmt.Errorf("iotssp: setting deadline: %w", err)
	}
	if _, err := c.conn.Write(body); err != nil {
		c.resetLocked()
		return Response{}, fmt.Errorf("iotssp: sending request: %w", err)
	}
	line, err := c.br.ReadBytes('\n')
	if err != nil {
		c.resetLocked()
		return Response{}, fmt.Errorf("iotssp: reading response: %w", err)
	}
	var resp Response
	if err := json.Unmarshal(line, &resp); err != nil {
		return Response{}, fmt.Errorf("iotssp: decoding response: %w", err)
	}
	if resp.Error != "" {
		return resp, fmt.Errorf("iotssp: service error: %s", resp.Error)
	}
	return resp, nil
}

// resetLocked drops a broken connection so the next call redials.
func (c *Client) resetLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.br = nil
	}
}
