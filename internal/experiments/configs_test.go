package experiments

import (
	"strings"
	"testing"
)

// TestPaperConfigs pins the paper-protocol constructors to §VI: 20 runs
// × 10-fold CV repeated 10 times with 100-tree forests for
// identification, 15 iterations per measured pair for enforcement
// overhead, and the reduced smoke protocol staying a strict subset.
func TestPaperConfigs(t *testing.T) {
	p := PaperIdentConfig()
	if p.Runs != 20 || p.Folds != 10 || p.Repeats != 10 || p.Trees != 100 || p.NegativeRatio != 10 {
		t.Errorf("PaperIdentConfig = %+v, want the §VI protocol", p)
	}
	q := QuickIdentConfig()
	if q.Runs >= p.Runs || q.Trees >= p.Trees || q.Repeats >= p.Repeats {
		t.Errorf("QuickIdentConfig %+v is not a reduced protocol of %+v", q, p)
	}
	if e := PaperEnforceConfig(); e.Iterations != 15 {
		t.Errorf("PaperEnforceConfig iterations = %d, want 15", e.Iterations)
	}
}

// TestEqualAccepts covers the accept-list comparison the fused-vs-oracle
// assertion rests on: order-sensitive, length-sensitive, nil == empty.
func TestEqualAccepts(t *testing.T) {
	cases := []struct {
		a, b []string
		want bool
	}{
		{nil, nil, true},
		{nil, []string{}, true},
		{[]string{"a"}, []string{"a"}, true},
		{[]string{"a"}, []string{"b"}, false},
		{[]string{"a"}, []string{"a", "b"}, false},
		{[]string{"a", "b"}, []string{"b", "a"}, false},
	}
	for _, c := range cases {
		if got := equalAccepts(c.a, c.b); got != c.want {
			t.Errorf("equalAccepts(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestAblationSweeps smoke-runs both ablation runners at a single
// minimal point each: the sweep plumbing (config override per point,
// label formatting, accuracy capture) is what's under test, not the
// science — the full sweeps are operator-driven.
func TestAblationSweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("CV sweeps in -short mode")
	}
	base := IdentConfig{Runs: 4, Folds: 2, Repeats: 1, Trees: 5, Seed: 3}
	nr, err := RunAblationNegativeRatio(base, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	if len(nr.Points) != 1 || nr.Points[0].Label != "5n" {
		t.Fatalf("negative-ratio sweep points = %+v", nr.Points)
	}
	fs, err := RunAblationForestSize(base, []int{5})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Points) != 1 || fs.Points[0].Label != "5 trees" {
		t.Fatalf("forest-size sweep points = %+v", fs.Points)
	}
	for _, p := range []AblationPoint{nr.Points[0], fs.Points[0]} {
		if p.GlobalAccuracy <= 0 || p.GlobalAccuracy > 1 {
			t.Errorf("point %q accuracy %v outside (0, 1]", p.Label, p.GlobalAccuracy)
		}
	}
}

// TestResultAccessorEdges covers the zero-denominator accessor branches
// and the metrics JSON rendering.
func TestResultAccessorEdges(t *testing.T) {
	r := &IdentResult{Tested: map[string]int{}, Correct: map[string]int{}}
	if got := r.Accuracy("ghost"); got != 0 {
		t.Errorf("Accuracy(ghost) = %v, want 0", got)
	}
	if got := (PairLatency{}).OverheadPct(); got != 0 {
		t.Errorf("OverheadPct with no baseline = %v, want 0", got)
	}
	m := &MetricsSnapshot{ClassifyNsPerFP: 42}
	if s := m.JSON(); !strings.Contains(s, "classify_ns_per_fp") {
		t.Errorf("metrics JSON missing classify_ns_per_fp: %s", s)
	}
}
