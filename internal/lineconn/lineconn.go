// Package lineconn is the pipelined line-correlated transport shared by
// every client in the serving stack: the pooled gateway client
// (gateway.Pool/FleetPool), the remote-shard client (iotssp.RemoteShard
// and the replicated iotssp.ShardGroup) and the legacy single-connection
// iotssp.Client all speak a JSON-lines protocol whose responses may
// arrive out of order, and all of them used to carry their own copy of
// the same subtle connection core. This package owns that core once.
//
// # The correlation contract
//
// A Conn writes request lines onto one persistent TCP connection and
// counts them: the first line written on a fresh connection is line 1,
// the next line 2, and so on. The peer echoes each request's line
// number in its response (the Message constraint's CorrelationLine),
// and a dedicated read pump routes every decoded response line to the
// waiter registered under that number — so many requests ride the
// connection at once and the match stays exact however the peer
// reorders verdicts, overload errors and cache hits, including two
// in-flight requests for the same logical key.
//
// # The generation guard
//
// The line counter resets on every redial. A response still buffered in
// a dead connection's read pump could therefore correlate — by line
// number alone — to a waiter registered on the replacement connection.
// Each connection incarnation carries a generation number; a pump that
// outlives its socket delivers nothing into a younger incarnation's
// waiter table (the delivery is counted as a dropped correlation and
// the stale pump exits).
//
// # Drop/fail semantics
//
// A transport failure — write error, read error, undecodable response
// line, local deadline — severs the connection and fails every pending
// waiter with the same error, so pipelined callers fail fast instead of
// waiting out their own deadlines, and the next round-trip redials
// lazily. Responses arriving with no registered waiter (after a local
// timeout took the waiter away, or lacking the line echo entirely) are
// dropped and counted, never misdelivered.
//
// # Handshake hook
//
// A client whose protocol opens with a negotiation (the shard
// protocol's hello) supplies the handshake line and a check for its
// reply: the hello is written as line 1 of every fresh connection and
// its correlated response must pass the check before the connection
// serves traffic, so a mode or version mismatch fails the dial cleanly
// instead of surfacing mid-pipeline.
//
// # Per-incarnation codec state and framed compression
//
// Wire protocol v4 makes connections stateful: both ends of one
// connection keep a fingerprint dictionary that must stay in lockstep,
// and the residual line stream may travel as compressed frames. The
// transport owns the lifecycle for both. Options.NewState builds a
// fresh codec-state value from each successful handshake reply — the
// connection incarnation IS the state's generation, so a severed
// connection can never encode against state the peer no longer holds —
// and encoder callbacks (RoundTripEnc/RoundTripBatchEnc) run against
// that state under the connection lock, atomically with the write that
// ships their output. Options.Framed inspects the same reply to decide
// whether everything after the handshake is framed flate
// (FrameWriter/FrameReader); the hello itself always travels
// uncompressed both ways. Handshake bytes, push bytes and
// dictionary hit/miss/reference-byte tallies are counted separately so
// steady-state bytes/verdict can be measured without the negotiation
// noise.
//
// Reconnects are lazy (the next round-trip redials) and the jittered
// exponential backoff between retry attempts comes from the shared
// internal/backoff source via Retry, so a fleet of clients backing off
// from one incident never retries in lockstep.
package lineconn

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
)

// Message is the decoded response-line type a Conn correlates: one JSON
// object per line, echoing the request's 1-based connection line number.
type Message interface {
	// CorrelationLine returns the echoed line number (0 means the
	// response is not tied to a request line and is dropped).
	CorrelationLine() uint64
}

// ErrClosed is returned by round-trips on a permanently closed Conn.
var ErrClosed = errors.New("lineconn: connection closed")

// Stats is a snapshot of a transport's canonical counters. Every client
// built on lineconn surfaces exactly this block (json-tagged for the
// experiments' metrics snapshot), so dials, reconnects, bursts and
// dropped correlations mean the same thing in PoolStats,
// RemoteShardStats and ShardGroupStats.
type Stats struct {
	// Dials counts connection establishments, first dials and redials
	// alike (each includes the handshake when one is configured).
	Dials uint64 `json:"dials"`
	// Reconnects counts the subset of Dials that replaced a previously
	// established connection.
	Reconnects uint64 `json:"reconnects"`
	// Bursts counts pipelined multi-request writes (RoundTripBatch
	// calls that reached the socket); BurstRequests the request lines
	// they carried.
	Bursts        uint64 `json:"bursts"`
	BurstRequests uint64 `json:"burst_requests"`
	// DroppedCorrelations counts response lines discarded instead of
	// delivered: stale-generation deliveries and responses with no
	// registered waiter.
	DroppedCorrelations uint64 `json:"dropped_correlations"`
	// BytesWritten and BytesRead count wire traffic through the
	// transport: request lines (handshakes included) out, response lines
	// in. They are what the experiments divide by verdict counts to
	// report bytes/verdict, so codec changes show up as a measured wire
	// cost, not a guess.
	BytesWritten uint64 `json:"bytes_written"`
	BytesRead    uint64 `json:"bytes_read"`
	// Pushes counts server-initiated lines (no line echo) handed to the
	// Push handler rather than dropped.
	Pushes uint64 `json:"pushes"`
	// HandshakeBytesWritten/HandshakeBytesRead are the subset of
	// BytesWritten/BytesRead spent on handshake lines and their replies;
	// PushBytesRead the subset of BytesRead spent on server-initiated
	// push lines. Steady-state accounting subtracts them so a
	// compression win is not diluted by negotiation traffic.
	HandshakeBytesWritten uint64 `json:"handshake_bytes_written,omitempty"`
	HandshakeBytesRead    uint64 `json:"handshake_bytes_read,omitempty"`
	PushBytesRead         uint64 `json:"push_bytes_read,omitempty"`
	// DictHits/DictMisses count fingerprints the v4 dictionary codec
	// sent as references-or-diffs versus in full; DictRefBytes the entry
	// bytes of the reference forms. Zero on pre-v4 connections.
	DictHits     uint64 `json:"dict_hits,omitempty"`
	DictMisses   uint64 `json:"dict_misses,omitempty"`
	DictRefBytes uint64 `json:"dict_ref_bytes,omitempty"`
}

// Counters accumulates transport counters. One Counters is typically
// shared by every Conn of a client (a pool's connections, a remote
// shard's pipelined links) so the client's stats describe its whole
// transport.
type Counters struct {
	dials, reconnects, bursts, burstReqs, dropped atomic.Uint64
	bytesWritten, bytesRead, pushes               atomic.Uint64
	handshakeWritten, handshakeRead, pushRead     atomic.Uint64
	dictHits, dictMisses, dictRefBytes            atomic.Uint64
}

// NewCounters creates an empty counter set.
func NewCounters() *Counters { return &Counters{} }

// AddDict folds one request's dictionary-codec tallies (a committed
// DictTxn's Stats) into the counters. Encoder callbacks call it after
// their transaction commits.
func (c *Counters) AddDict(hits, misses, refBytes uint64) {
	c.dictHits.Add(hits)
	c.dictMisses.Add(misses)
	c.dictRefBytes.Add(refBytes)
}

// Snapshot returns the current counter values.
func (c *Counters) Snapshot() Stats {
	return Stats{
		Dials:                 c.dials.Load(),
		Reconnects:            c.reconnects.Load(),
		Bursts:                c.bursts.Load(),
		BurstRequests:         c.burstReqs.Load(),
		DroppedCorrelations:   c.dropped.Load(),
		BytesWritten:          c.bytesWritten.Load(),
		BytesRead:             c.bytesRead.Load(),
		Pushes:                c.pushes.Load(),
		HandshakeBytesWritten: c.handshakeWritten.Load(),
		HandshakeBytesRead:    c.handshakeRead.Load(),
		PushBytesRead:         c.pushRead.Load(),
		DictHits:              c.dictHits.Load(),
		DictMisses:            c.dictMisses.Load(),
		DictRefBytes:          c.dictRefBytes.Load(),
	}
}

// Retry is the jittered-exponential backoff policy every lineconn-based
// client sleeps on between retry attempts: Base doubled per attempt,
// capped at Max (0 means uncapped), each sleep jittered to 50–150% by
// the shared seeded source.
type Retry struct {
	Base, Max time.Duration
	Jitter    *backoff.Jitter
}

// Sleep blocks for attempt's backoff (attempt counts from 1) or until
// ctx is done, returning ctx's error in that case.
func (r Retry) Sleep(ctx context.Context, attempt int) error {
	d := r.Base << (attempt - 1)
	if d <= 0 || (r.Max > 0 && d > r.Max) {
		// Overflowed shifts land on the cap too (or back on Base when
		// uncapped).
		d = r.Max
		if d <= 0 {
			d = r.Base
		}
	}
	jittered := r.Jitter.Scale(d)
	if ctx.Done() == nil {
		time.Sleep(jittered)
		return nil
	}
	t := time.NewTimer(jittered)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Options configures a Conn beyond its address.
type Options[M Message] struct {
	// Counters receives the connection's transport counters; pass one
	// shared set for every Conn of a client. nil allocates a private set.
	Counters *Counters
	// Hello, when non-empty, is the handshake line (including its
	// trailing newline) written as line 1 of every fresh connection.
	// CheckHello validates the handshake's correlated reply; an error
	// fails the dial and the connection never serves traffic.
	Hello      []byte
	CheckHello func(M) error
	// Push, when non-nil, receives server-initiated lines: responses
	// carrying no line echo (CorrelationLine 0), which correlate with no
	// round-trip. Without a handler such lines are dropped and counted.
	// The handler runs on the read pump — it must not block (a version
	// stamp fold and a counter bump, not a round-trip).
	Push func(M)
	// NewState, when non-nil, builds the connection incarnation's codec
	// state from each successful handshake reply (nil return = stateless
	// connection). Encoder callbacks receive the value; a reconnect
	// builds a fresh one, so state never outlives the connection the
	// peer mirrors it on. Requires Hello.
	NewState func(M) any
	// Framed, when non-nil, inspects the handshake reply and reports
	// whether everything after the handshake travels as compressed
	// frames (FrameWriter/FrameReader) instead of plain lines. Requires
	// Hello; the handshake itself is always plain.
	Framed func(M) bool
	// Inbound, when non-nil, transforms every post-handshake response
	// line on the read pump, in wire order, against the incarnation's
	// codec state — the hook for stateful response codecs whose
	// decode order must match the peer's encode order (v4 name
	// interning). An error severs the connection. It runs on the pump
	// goroutine: it must not block or call back into the Conn, and it
	// is the only reader of whatever state fields it touches (encoders
	// run under the connection lock on different fields). Requires
	// Hello.
	Inbound func(state any, msg M) (M, error)
}

// Encoder builds one request line (trailing newline included) against
// the connection incarnation's codec state — nil when the connection is
// stateless. Encoders run under the connection lock, atomically with
// the write that ships their output: they must be fast, must not call
// back into the Conn, and must not commit state mutations except for
// output they successfully return (an error return must leave the state
// untouched, since nothing will be written).
type Encoder func(state any) ([]byte, error)

// Sizes reports one round-trip's payload byte counts: the request line
// as encoded (pre-framing) and the correlated response line as decoded
// (post-deframing). On a plain connection these equal wire bytes; on a
// framed connection the wire cost is the compressed frames, counted in
// Stats.BytesWritten/BytesRead. Clients use Sizes to attribute payload
// bytes to traffic classes (state transfer versus steady-state
// classifies) independently of transport compression.
type Sizes struct {
	Wrote, Read int
}

// pumpStart is the handshake decision ensureConnLocked hands the read
// pump: whether the rest of the stream is framed, and the incarnation's
// codec state for the Inbound hook.
type pumpStart struct {
	framed bool
	state  any
}

// result is one completed round-trip.
type result[M Message] struct {
	msg M
	n   int
	err error
}

// Conn is one persistent pipelined connection with line-echo
// correlation. It dials lazily on the first round-trip, redials lazily
// after any failure, and is safe for concurrent use — many goroutines
// may have round-trips in flight at once.
type Conn[M Message] struct {
	addr       string
	counters   *Counters
	hello      []byte
	check      func(M) error
	push       func(M)
	newState   func(M) any
	framedHook func(M) bool
	inbound    func(state any, msg M) (M, error)

	mu   sync.Mutex
	conn net.Conn
	// dialing is non-nil while one goroutine dials and handshakes; it is
	// closed when that attempt resolves. Concurrent round-trips wait on
	// it instead of treating the half-handshaken conn as established —
	// a request written before the framing/state decision would go out
	// plain and unstated on a connection the peer is about to frame.
	dialing chan struct{}
	// gen counts connection incarnations (the generation guard: pumps
	// carry their generation and stale deliveries are discarded).
	gen uint64
	// lines counts request lines written on the current connection;
	// waiters holds the in-flight round-trip for each line.
	lines   uint64
	waiters map[uint64]chan result[M]
	closed  bool
	// state, framed and fw belong to the current incarnation: the codec
	// state NewState built from its handshake reply, whether its
	// post-handshake stream is framed, and the frame writer when so.
	state  any
	framed bool
	fw     *FrameWriter
}

// New creates a connection to addr (host:port). Nothing is dialed until
// the first round-trip.
func New[M Message](addr string, opts Options[M]) *Conn[M] {
	if opts.Counters == nil {
		opts.Counters = NewCounters()
	}
	return &Conn[M]{
		addr:       addr,
		counters:   opts.Counters,
		hello:      opts.Hello,
		check:      opts.CheckHello,
		push:       opts.Push,
		newState:   opts.NewState,
		framedHook: opts.Framed,
		inbound:    opts.Inbound,
		waiters:    make(map[uint64]chan result[M]),
	}
}

// Addr returns the peer address.
func (c *Conn[M]) Addr() string { return c.addr }

// deadlineFor folds the per-call timeout with ctx's deadline.
func deadlineFor(ctx context.Context, timeout time.Duration) time.Time {
	deadline := time.Now().Add(timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	return deadline
}

// ensureConnLocked dials and (when configured) handshakes the
// connection if needed. Callers hold mu; the handshake reply is awaited
// with mu released (the read pump needs it to deliver), and the method
// returns with mu held either way.
func (c *Conn[M]) ensureConnLocked(ctx context.Context, deadline time.Time) error {
	for c.dialing != nil {
		ch := c.dialing
		c.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			c.mu.Lock()
			return ctx.Err()
		}
		c.mu.Lock()
		if c.closed {
			return ErrClosed
		}
	}
	if c.conn != nil {
		return nil
	}
	dialCh := make(chan struct{})
	c.dialing = dialCh
	defer func() {
		// Runs with mu held: every return path below holds the lock.
		c.dialing = nil
		close(dialCh)
	}()
	d := net.Dialer{Deadline: deadline}
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return fmt.Errorf("lineconn: dialing %s: %w", c.addr, err)
	}
	if conn.LocalAddr().String() == conn.RemoteAddr().String() {
		// TCP simultaneous-connect on loopback: dialing a just-freed
		// ephemeral port can self-connect, and the pump would then read
		// back our own request lines as responses. Treat it as a failed
		// dial.
		conn.Close()
		return fmt.Errorf("lineconn: dialing %s: self-connection", c.addr)
	}
	if c.gen > 0 {
		c.counters.reconnects.Add(1)
	}
	c.conn = conn
	c.gen++
	c.lines = 0
	c.state, c.framed, c.fw = nil, false, nil
	c.counters.dials.Add(1)
	gen := c.gen
	if len(c.hello) == 0 {
		go c.readPump(conn, gen, nil)
		return nil
	}

	// The handshake consumes line 1 of the fresh connection. The pump
	// reads the reply plain, then blocks on decide: whether the rest of
	// the stream is framed is known only after the reply is validated
	// here, and the pump must not read past the reply until then (a
	// framed peer may push frames right behind it).
	c.lines = 1
	helloCh := make(chan result[M], 1)
	c.waiters[1] = helloCh
	decide := make(chan pumpStart, 1)
	go c.readPump(conn, gen, decide)
	conn.SetWriteDeadline(deadline)
	if _, err := conn.Write(c.hello); err != nil {
		// The pump is still blocked reading the reply; closing the
		// socket in dropLocked unblocks it without a decision.
		c.dropLocked(conn, err)
		decide <- pumpStart{}
		return fmt.Errorf("lineconn: handshake with %s: %w", c.addr, err)
	}
	c.counters.bytesWritten.Add(uint64(len(c.hello)))
	c.counters.handshakeWritten.Add(uint64(len(c.hello)))

	// Wait for the handshake reply outside the lock.
	c.mu.Unlock()
	var res result[M]
	timer := time.NewTimer(time.Until(deadline))
	select {
	case res = <-helloCh:
	case <-ctx.Done():
		res = result[M]{err: ctx.Err()}
	case <-timer.C:
		res = result[M]{err: fmt.Errorf("lineconn: handshake with %s: deadline exceeded", c.addr)}
	}
	timer.Stop()
	c.mu.Lock()

	if res.err != nil {
		c.dropLocked(conn, res.err)
		decide <- pumpStart{}
		return res.err
	}
	if c.check != nil {
		if err := c.check(res.msg); err != nil {
			c.dropLocked(conn, err)
			decide <- pumpStart{}
			return err
		}
	}
	if c.conn != conn {
		// The connection died while the lock was released.
		decide <- pumpStart{}
		return fmt.Errorf("lineconn: %s: connection lost during handshake", c.addr)
	}
	if c.newState != nil {
		c.state = c.newState(res.msg)
	}
	if c.framedHook != nil && c.framedHook(res.msg) {
		c.framed = true
		c.fw = NewFrameWriter(conn)
	}
	decide <- pumpStart{framed: c.framed, state: c.state}
	return nil
}

// RoundTrip writes one request line (body must include its trailing
// newline) and waits for the correlated response, at most timeout (or
// ctx's earlier deadline). A missed deadline severs the connection —
// the peer or the link is wedged, and every pipelined request should
// fail fast rather than each waiting out its own timer.
func (c *Conn[M]) RoundTrip(ctx context.Context, body []byte, timeout time.Duration) (M, error) {
	msg, _, err := c.RoundTripEnc(ctx, func(any) ([]byte, error) { return body, nil }, timeout)
	return msg, err
}

// RoundTripEnc is RoundTrip with the request line produced by an
// Encoder against the connection's codec state (see Encoder for the
// contract), reporting the payload Sizes alongside the response. An
// encoder error aborts the call before anything is written.
func (c *Conn[M]) RoundTripEnc(ctx context.Context, enc Encoder, timeout time.Duration) (M, Sizes, error) {
	var zero M
	deadline := deadlineFor(ctx, timeout)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return zero, Sizes{}, ErrClosed
	}
	if err := c.ensureConnLocked(ctx, deadline); err != nil {
		c.mu.Unlock()
		return zero, Sizes{}, err
	}
	conn := c.conn
	body, err := enc(c.state)
	if err != nil {
		c.mu.Unlock()
		return zero, Sizes{}, err
	}
	ch := make(chan result[M], 1)
	c.lines++
	c.waiters[c.lines] = ch
	conn.SetWriteDeadline(deadline)
	if err := c.writeLocked(conn, body); err != nil {
		werr := fmt.Errorf("lineconn: writing to %s: %w", c.addr, err)
		c.dropLocked(conn, werr)
		c.mu.Unlock()
		return zero, Sizes{Wrote: len(body)}, werr
	}
	c.mu.Unlock()

	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case res := <-ch:
		return res.msg, Sizes{Wrote: len(body), Read: res.n}, res.err
	case <-ctx.Done():
		c.fail(conn, ctx.Err())
		return zero, Sizes{Wrote: len(body)}, ctx.Err()
	case <-timer.C:
		err := fmt.Errorf("lineconn: %s: deadline exceeded", c.addr)
		c.fail(conn, err)
		return zero, Sizes{Wrote: len(body)}, err
	}
}

// RoundTripBatch writes a burst of request lines in one pipelined write
// and waits for all their correlated responses. msgs[j]/errs[j]
// describe bodies[j]; a transport failure mid-burst fails the affected
// entries (the caller decides whether to retry them individually).
func (c *Conn[M]) RoundTripBatch(ctx context.Context, bodies [][]byte, timeout time.Duration) ([]M, []error) {
	encs := make([]Encoder, len(bodies))
	for j := range bodies {
		body := bodies[j]
		encs[j] = func(any) ([]byte, error) { return body, nil }
	}
	return c.RoundTripBatchEnc(ctx, encs, timeout)
}

// RoundTripBatchEnc is RoundTripBatch with each request line produced
// by an Encoder against the connection's codec state, in burst order —
// on a stateful connection the peer decodes the lines in exactly the
// order they were encoded. An encoder error fails only its own entry
// (no line is written for it); the rest of the burst proceeds.
func (c *Conn[M]) RoundTripBatchEnc(ctx context.Context, encs []Encoder, timeout time.Duration) ([]M, []error) {
	msgs := make([]M, len(encs))
	errs := make([]error, len(encs))
	deadline := deadlineFor(ctx, timeout)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		for j := range errs {
			errs[j] = ErrClosed
		}
		return msgs, errs
	}
	if err := c.ensureConnLocked(ctx, deadline); err != nil {
		c.mu.Unlock()
		for j := range errs {
			errs[j] = err
		}
		return msgs, errs
	}
	conn := c.conn
	chans := make([]chan result[M], len(encs))
	var burst []byte
	registered := 0
	for j, enc := range encs {
		body, err := enc(c.state)
		if err != nil {
			errs[j] = err
			continue
		}
		chans[j] = make(chan result[M], 1)
		c.lines++
		c.waiters[c.lines] = chans[j]
		burst = append(burst, body...)
		registered++
	}
	if registered > 0 {
		c.counters.bursts.Add(1)
		c.counters.burstReqs.Add(uint64(registered))
		conn.SetWriteDeadline(deadline)
		if err := c.writeLocked(conn, burst); err != nil {
			// dropLocked fails every registered waiter, ours included; the
			// wait loop below collects those failures positionally.
			c.dropLocked(conn, fmt.Errorf("lineconn: writing burst to %s: %w", c.addr, err))
		}
	}
	c.mu.Unlock()

	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	severed := false
	for j, ch := range chans {
		if ch == nil {
			continue // encoder failure; errs[j] already set
		}
		select {
		case res := <-ch:
			msgs[j], errs[j] = res.msg, res.err
		case <-ctx.Done():
			if !severed {
				severed = true
				c.fail(conn, ctx.Err())
			}
			res := <-ch // fail delivered an error to every waiter
			msgs[j], errs[j] = res.msg, res.err
		case <-timer.C:
			if !severed {
				severed = true
				c.fail(conn, fmt.Errorf("lineconn: %s: burst deadline exceeded", c.addr))
			}
			res := <-ch
			msgs[j], errs[j] = res.msg, res.err
		}
	}
	return msgs, errs
}

// writeLocked ships one already-encoded payload onto conn: directly on
// a plain connection, or as one compressed frame when the incarnation
// negotiated framing. Wire bytes (frame overhead included, compression
// applied) land in the counters on success either way. Callers hold mu
// with conn current.
func (c *Conn[M]) writeLocked(conn net.Conn, body []byte) error {
	if !c.framed {
		if _, err := conn.Write(body); err != nil {
			return err
		}
		c.counters.bytesWritten.Add(uint64(len(body)))
		return nil
	}
	if _, err := c.fw.Write(body); err != nil {
		return err
	}
	wire, err := c.fw.Flush()
	if err != nil {
		return err
	}
	c.counters.bytesWritten.Add(uint64(wire))
	return nil
}

// readPump decodes response lines and hands each to its waiter until
// the connection breaks or a younger incarnation takes over (buffered
// lines can outlive the socket close; they must not resolve the new
// connection's waiters). On a handshaking connection, decide carries
// the framing decision: the pump reads exactly one plain line (the
// handshake reply), then waits for ensureConnLocked to validate it and
// announce whether the rest of the stream is framed before reading on.
func (c *Conn[M]) readPump(conn net.Conn, gen uint64, decide chan pumpStart) {
	br := bufio.NewReader(conn)
	var fr *FrameReader
	var state any
	first := decide != nil
	for {
		var line []byte
		var err error
		if fr != nil {
			var wire int
			line, wire, err = fr.Next()
			if err == nil {
				c.counters.bytesRead.Add(uint64(wire))
			}
		} else {
			line, err = br.ReadBytes('\n')
			if err == nil {
				c.counters.bytesRead.Add(uint64(len(line)))
			}
		}
		if err != nil {
			c.fail(conn, fmt.Errorf("lineconn: reading from %s: %w", c.addr, err))
			return
		}
		if first {
			c.counters.handshakeRead.Add(uint64(len(line)))
		}
		var msg M
		if err := json.Unmarshal(line, &msg); err != nil {
			c.fail(conn, fmt.Errorf("lineconn: decoding response from %s: %w", c.addr, err))
			return
		}
		if !first && c.inbound != nil {
			var err error
			if msg, err = c.inbound(state, msg); err != nil {
				c.fail(conn, fmt.Errorf("lineconn: decoding response from %s: %w", c.addr, err))
				return
			}
		}
		if !c.deliver(msg, gen, len(line)) {
			return
		}
		if first {
			first = false
			start := <-decide
			state = start.state
			if start.framed {
				fr = NewFrameReader(br)
			}
		}
	}
}

// deliver routes a response to the waiter for its echoed line number,
// reporting whether the pump's connection is still current. Lines with
// no echo at all are server-initiated pushes, handed to the Push
// handler when one is configured. Stale generations and responses
// without a waiter (after a local timeout, or an uncorrelated line with
// no Push handler) are dropped and counted.
func (c *Conn[M]) deliver(msg M, gen uint64, n int) bool {
	c.mu.Lock()
	if c.gen != gen {
		c.mu.Unlock()
		c.counters.dropped.Add(1)
		return false
	}
	if msg.CorrelationLine() == 0 && c.push != nil {
		c.mu.Unlock()
		c.counters.pushes.Add(1)
		c.counters.pushRead.Add(uint64(n))
		c.push(msg)
		return true
	}
	ch := c.waiters[msg.CorrelationLine()]
	if ch == nil {
		c.mu.Unlock()
		c.counters.dropped.Add(1)
		return true
	}
	delete(c.waiters, msg.CorrelationLine())
	c.mu.Unlock()
	ch <- result[M]{msg: msg, n: n}
	return true
}

// fail severs conn and fails every outstanding round-trip, so the next
// call redials.
func (c *Conn[M]) fail(conn net.Conn, err error) {
	c.mu.Lock()
	c.dropLocked(conn, err)
	c.mu.Unlock()
}

// dropLocked severs conn (if still current) and fails its waiters.
// Callers hold mu.
func (c *Conn[M]) dropLocked(conn net.Conn, err error) {
	if c.conn != conn {
		return
	}
	conn.Close()
	c.conn = nil
	c.state, c.framed, c.fw = nil, false, nil
	waiters := c.waiters
	c.waiters = make(map[uint64]chan result[M])
	for _, ch := range waiters {
		ch <- result[M]{err: err}
	}
}

// Close permanently severs the connection and fails its outstanding
// round-trips; further round-trips return ErrClosed.
func (c *Conn[M]) Close() {
	c.mu.Lock()
	c.closed = true
	if c.conn != nil {
		c.dropLocked(c.conn, ErrClosed)
	}
	c.mu.Unlock()
}
