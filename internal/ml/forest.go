package ml

import (
	"fmt"
	"math/rand"
)

// ForestConfig controls Random Forest training.
type ForestConfig struct {
	// Trees is the number of trees; 0 means DefaultTrees.
	Trees int
	// Tree configures the individual CART trees.
	Tree TreeConfig
	// Seed seeds the forest's randomness (bootstrap and feature
	// subsampling). Two forests trained with the same seed on the same
	// data are identical.
	Seed int64
}

// DefaultTrees is the default forest size.
const DefaultTrees = 100

// Forest is a trained Random Forest binary classifier.
type Forest struct {
	trees []*Tree
}

// NewForest trains a Random Forest on ds: each tree is induced on a
// bootstrap sample of the rows with per-node feature subsampling
// (Breiman, 2001).
func NewForest(ds *Dataset, cfg ForestConfig) (*Forest, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("ml: training on empty dataset")
	}
	nTrees := cfg.Trees
	if nTrees <= 0 {
		nTrees = DefaultTrees
	}
	master := rand.New(rand.NewSource(cfg.Seed))
	f := &Forest{trees: make([]*Tree, nTrees)}
	for i := range f.trees {
		// Derive one generator per tree from the master stream so tree
		// training is independent of the others' consumption pattern.
		rng := rand.New(rand.NewSource(master.Int63()))
		sample := ds.Subset(bootstrap(ds.Len(), rng))
		f.trees[i] = NewTree(sample, cfg.Tree, rng)
	}
	return f, nil
}

// PredictProb returns the fraction of trees voting for the positive
// class.
func (f *Forest) PredictProb(x []float64) float64 {
	votes := 0
	for _, t := range f.trees {
		votes += t.Predict(x)
	}
	return float64(votes) / float64(len(f.trees))
}

// Predict returns the majority-vote class for x.
func (f *Forest) Predict(x []float64) int {
	if f.PredictProb(x) >= 0.5 {
		return 1
	}
	return 0
}

// Trees returns the number of trees in the forest.
func (f *Forest) Trees() int { return len(f.trees) }
