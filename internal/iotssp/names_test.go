package iotssp

import (
	"reflect"
	"testing"
)

// TestNameInternRoundTrip: every wire form an encoder can emit decodes
// back to the original name, with the two ends' tables in lockstep.
func TestNameInternRoundTrip(t *testing.T) {
	enc := &nameEnc{}
	dec := &nameDec{}
	names := []string{"Aria", "HueBridge", "Aria", "#strange", "=stranger", "~tilde", "HueBridge", "Aria"}
	for i, name := range names {
		wire := enc.define(name)
		got, err := dec.resolve(wire)
		if err != nil {
			t.Fatalf("step %d: resolve(%q): %v", i, wire, err)
		}
		if got != name {
			t.Fatalf("step %d: %q -> %q -> %q", i, name, wire, got)
		}
	}
	// Second sight of a defined name is a reference, not a re-definition.
	if wire := enc.define("Aria"); wire != "#0" {
		t.Errorf("repeat define = %q, want #0", wire)
	}
	// ref never defines: an unseen name travels as an escaped literal.
	if wire := enc.ref("NeverDefined"); wire != "NeverDefined" {
		t.Errorf("ref of unseen plain name = %q", wire)
	}
	if wire := enc.ref("#odd"); wire != "~#odd" {
		t.Errorf("ref of unseen escaped name = %q", wire)
	}
}

// TestNameDecRejectsUnknownRef: a reference past the decode table is a
// coherence failure, not a silent empty name.
func TestNameDecRejectsUnknownRef(t *testing.T) {
	dec := &nameDec{names: []string{"Aria"}}
	for _, bad := range []string{"#1", "#-1", "#x", "#"} {
		if _, err := dec.resolve(bad); err == nil {
			t.Errorf("resolve(%q) accepted", bad)
		}
	}
	if got, err := dec.resolve("#0"); err != nil || got != "Aria" {
		t.Errorf("resolve(#0) = %q, %v", got, err)
	}
	if got, err := dec.resolve(""); err != nil || got != "" {
		t.Errorf("resolve(empty) = %q, %v", got, err)
	}
}

// TestInternCandidatesPendingCommit: candidate interning returns the
// wire forms plus the definitions to commit only once the line ships —
// and repeated names within one request reference the pending index.
func TestInternCandidatesPendingCommit(t *testing.T) {
	idx := map[string]int{"Aria": 0}
	wire, defined := internCandidates([]string{"Aria", "HueBridge", "HueBridge", "WeMo"}, idx)
	if want := []string{"#0", "=HueBridge", "#1", "=WeMo"}; !reflect.DeepEqual(wire, want) {
		t.Fatalf("wire = %v, want %v", wire, want)
	}
	if want := []string{"HueBridge", "WeMo"}; !reflect.DeepEqual(defined, want) {
		t.Fatalf("defined = %v, want %v", defined, want)
	}
	// Nothing committed yet: the caller owns the commit.
	if len(idx) != 1 {
		t.Fatalf("intern mutated the table before commit: %v", idx)
	}
	// The decoder reads the same line back into lockstep.
	dec := &nameDec{names: []string{"Aria"}}
	if err := expandCandidates(wire, dec); err != nil {
		t.Fatal(err)
	}
	if want := []string{"Aria", "HueBridge", "HueBridge", "WeMo"}; !reflect.DeepEqual(wire, want) {
		t.Fatalf("expanded = %v, want %v", wire, want)
	}
}

// TestInternShardResponseRoundTrip: accepts define in wire order, best
// reuses the table, score keys are reference-or-literal (map order is
// not definition order), and expansion restores the original response.
func TestInternShardResponseRoundTrip(t *testing.T) {
	enc := &nameEnc{}
	dec := &nameDec{}
	orig := shardResponse{
		Accepts: [][]string{{"Aria", "HueBridge"}, {}, {"Aria"}},
		Best:    "HueBridge",
		Scores:  map[string]float64{"Aria": 0.25, "HueBridge": 0.5, "Outsider": 0.125},
	}
	resp := shardResponse{
		Accepts: [][]string{append([]string(nil), orig.Accepts[0]...), {}, append([]string(nil), orig.Accepts[2]...)},
		Best:    orig.Best,
		Scores:  map[string]float64{"Aria": 0.25, "HueBridge": 0.5, "Outsider": 0.125},
	}
	internShardResponse(&resp, enc)
	if resp.Accepts[0][0] != "=Aria" || resp.Accepts[2][0] != "#0" || resp.Best != "#1" {
		t.Fatalf("interned response = %+v", resp)
	}
	if _, ok := resp.Scores["Outsider"]; !ok {
		t.Fatalf("undefined score key should stay literal: %v", resp.Scores)
	}
	if err := expandShardResponse(&resp, dec); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp, orig) {
		t.Fatalf("round trip = %+v, want %+v", resp, orig)
	}
}
