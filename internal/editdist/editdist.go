// Package editdist implements the Damerau-Levenshtein edit distance used
// by IoT Sentinel's discrimination stage (paper §IV-B2).
//
// The variant implemented is optimal string alignment (OSA): insertion,
// deletion, substitution, and transposition of two adjacent symbols, with
// no symbol edited twice. Fingerprints F are treated as words whose
// characters are whole packet feature vectors; two characters are equal
// only if all 23 features match.
package editdist

// Rows is caller-owned scratch for DistanceBuf: the three DP rows of the
// OSA recurrence. A zero Rows is ready to use; it grows as needed and is
// reused across calls, so a hot loop comparing many sequence pairs
// performs no per-comparison allocations. A Rows must not be shared
// between goroutines; give each worker its own.
type Rows struct {
	prev2, prev, cur []int
}

// grow ensures each row holds at least n ints.
func (r *Rows) grow(n int) {
	if cap(r.prev2) < n {
		r.prev2 = make([]int, n)
		r.prev = make([]int, n)
		r.cur = make([]int, n)
		return
	}
	r.prev2 = r.prev2[:n]
	r.prev = r.prev[:n]
	r.cur = r.cur[:n]
}

// Distance returns the OSA Damerau-Levenshtein distance between a and b.
// It runs in O(len(a)*len(b)) time and O(min) memory (three rows).
func Distance[T comparable](a, b []T) int {
	var r Rows
	return DistanceBuf(a, b, &r)
}

// DistanceBuf is Distance with caller-owned scratch rows: it allocates
// nothing once r has grown to the longest b seen. This is the variant the
// discrimination stage uses, where every candidate×reference comparison
// would otherwise allocate three rows.
func DistanceBuf[T comparable](a, b []T, r *Rows) int {
	n, m := len(a), len(b)
	if n == 0 {
		return m
	}
	if m == 0 {
		return n
	}

	r.grow(m + 1)
	prev2 := r.prev2 // row i-2
	prev := r.prev   // row i-1
	cur := r.cur     // row i
	for j := 0; j <= m; j++ {
		prev[j] = j
	}

	for i := 1; i <= n; i++ {
		cur[0] = i
		for j := 1; j <= m; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			d := min3(
				prev[j]+1,      // deletion
				cur[j-1]+1,     // insertion
				prev[j-1]+cost, // substitution / match
			)
			if i > 1 && j > 1 && a[i-1] == b[j-2] && a[i-2] == b[j-1] {
				if t := prev2[j-2] + 1; t < d {
					d = t // adjacent transposition
				}
			}
			cur[j] = d
		}
		prev2, prev, cur = prev, cur, prev2
	}
	return prev[m]
}

// Normalized returns the distance divided by the length of the longer
// sequence, bounded on [0,1]. Two empty sequences have distance 0.
func Normalized[T comparable](a, b []T) float64 {
	var r Rows
	return NormalizedBuf(a, b, &r)
}

// NormalizedBuf is Normalized with caller-owned scratch rows.
func NormalizedBuf[T comparable](a, b []T, r *Rows) float64 {
	longest := len(a)
	if len(b) > longest {
		longest = len(b)
	}
	if longest == 0 {
		return 0
	}
	return float64(DistanceBuf(a, b, r)) / float64(longest)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
