package iotssp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/core"
	"repro/internal/fingerprint"
)

// RemoteShardConfig tunes a RemoteShard client. The zero value selects
// defaults sized for an intra-fleet link.
type RemoteShardConfig struct {
	// Conns is the number of persistent pipelined connections to the
	// shard server. 0 selects 2.
	Conns int
	// Timeout bounds one classify/discriminate/meta round-trip. 0
	// selects 10s.
	Timeout time.Duration
	// EnrollTimeout bounds one enrolment round-trip — training a forest
	// takes seconds, not microseconds. 0 selects 2m.
	EnrollTimeout time.Duration
	// MaxRetries is how many times a request is retried after transport
	// failures or retryable errors, with jittered exponential backoff. A
	// shard is load-bearing state, not a stateless replica — crossing a
	// shard restart matters more than failing fast — so the default is a
	// deep 20 (with the backoff cap that rides out multi-second
	// restarts).
	MaxRetries int
	// RetryBackoff is the base backoff before the first retry; doubled
	// (and jittered to 50–150%) each further retry up to MaxBackoff.
	// 0 selects 10ms.
	RetryBackoff time.Duration
	// MaxBackoff caps the doubling. 0 selects 500ms.
	MaxBackoff time.Duration
	// Seed seeds the jitter generator (0 selects 1).
	Seed int64
}

func (c RemoteShardConfig) withDefaults() RemoteShardConfig {
	if c.Conns <= 0 {
		c.Conns = 2
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.EnrollTimeout <= 0 {
		c.EnrollTimeout = 2 * time.Minute
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 20
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 500 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// RemoteShardStats is a snapshot of a RemoteShard's counters.
type RemoteShardStats struct {
	// Requests counts shard operations issued; Retries counts extra
	// attempts after transport failures or retryable errors.
	Requests uint64 `json:"requests"`
	Retries  uint64 `json:"retries"`
	// Dials counts connection (re-)establishments (each includes a
	// hello handshake).
	Dials uint64 `json:"dials"`
	// Failures counts operations that exhausted their retries.
	Failures uint64 `json:"failures"`
	// Version is the last shard enrolment version observed on the wire.
	Version uint64 `json:"version"`
}

// RemoteShard is the client side of the shard wire protocol: it
// implements core.Shard against a bank shard hosted by a shard-serving
// Server in another process, so a core.ShardedBank can mix it freely
// with in-process shards. The transport reuses the pooled gateway
// client's machinery — N persistent connections with pipelined
// requests correlated by line echo, lazy dials with a hello handshake
// that verifies the peer's mode and protocol version, and jittered
// exponential backoff around reconnects and retryable errors.
//
// Version is served from a local cache, refreshed from the version
// stamp every shard response carries — Versions() runs on the verdict
// cache's per-request path and must not cost a round-trip. A remote
// enrolment (this client's or anybody else's, observed on any reply)
// therefore bumps the cached version and invalidates exactly the
// dependent verdict-cache entries, the same contract an in-process
// shard's atomic version counter provides.
//
// Failure semantics: transient failures (including a shard-server
// restart) are absorbed by reconnect + retry. An operation that
// exhausts its retries fails open — ClassifyBatch reports empty accept
// sets and Discriminate no scores — so the logical bank degrades to
// "unknown device" on the lost partition instead of wedging; Enroll
// surfaces its error. RemoteShard is safe for concurrent use.
type RemoteShard struct {
	addr   string
	cfg    RemoteShardConfig
	conns  []*shardConn
	jitter *backoff.Jitter
	next   atomic.Uint64 // round-robin connection cursor

	version atomic.Uint64

	// typesMu guards the cached type list (refreshed by Types).
	typesMu sync.Mutex
	types   []string

	requests, retries, dials, failures atomic.Uint64
}

// NewRemoteShard creates a client for the shard served at addr
// (host:port). No connection is made until the first operation.
func NewRemoteShard(addr string, cfg RemoteShardConfig) *RemoteShard {
	cfg = cfg.withDefaults()
	rs := &RemoteShard{addr: addr, cfg: cfg, jitter: backoff.NewJitter(cfg.Seed)}
	rs.conns = make([]*shardConn, cfg.Conns)
	for i := range rs.conns {
		rs.conns[i] = &shardConn{addr: addr, rs: rs, waiters: make(map[uint64]chan shardResult)}
	}
	return rs
}

// Stats snapshots the client counters.
func (rs *RemoteShard) Stats() RemoteShardStats {
	return RemoteShardStats{
		Requests: rs.requests.Load(),
		Retries:  rs.retries.Load(),
		Dials:    rs.dials.Load(),
		Failures: rs.failures.Load(),
		Version:  rs.version.Load(),
	}
}

// Addr returns the shard server's address.
func (rs *RemoteShard) Addr() string { return rs.addr }

// observeVersion folds a version stamp from the wire into the cache.
// Versions only grow, so the maximum observed is the freshest.
func (rs *RemoteShard) observeVersion(v uint64) {
	for {
		cur := rs.version.Load()
		if v <= cur || rs.version.CompareAndSwap(cur, v) {
			return
		}
	}
}

// do runs one shard operation with reconnect + jittered retry, spreading
// attempts over the connection pool.
func (rs *RemoteShard) do(req shardRequest, timeout time.Duration) (shardResponse, error) {
	rs.requests.Add(1)
	body, err := json.Marshal(req)
	if err != nil {
		return shardResponse{}, fmt.Errorf("iotssp: encoding shard request: %w", err)
	}
	body = append(body, '\n')

	var lastErr error
	for attempt := 0; attempt <= rs.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			rs.retries.Add(1)
			d := rs.cfg.RetryBackoff << (attempt - 1)
			if d > rs.cfg.MaxBackoff || d <= 0 {
				d = rs.cfg.MaxBackoff
			}
			time.Sleep(rs.jitter.Scale(d))
		}
		sc := rs.conns[rs.next.Add(1)%uint64(len(rs.conns))]
		resp, err := sc.roundTrip(body, timeout)
		if err != nil {
			lastErr = err
			continue
		}
		rs.observeVersion(resp.Version)
		if resp.Error != "" {
			if resp.Retryable {
				lastErr = fmt.Errorf("iotssp: shard backpressure: %s", resp.Error)
				continue
			}
			return resp, fmt.Errorf("iotssp: shard error: %s", resp.Error)
		}
		return resp, nil
	}
	rs.failures.Add(1)
	return shardResponse{}, fmt.Errorf("iotssp: shard %s unreachable: %w", rs.addr, lastErr)
}

// ClassifyBatch implements core.Shard: the batch ships as packed F
// matrices in one pipelined request, and the reply carries each
// fingerprint's accepted types in shard enrolment order. The workers
// budget is the scatter's local concern and does not travel — the shard
// server fans the batch across its own cores. On exhausted retries the
// batch fails open to all-reject (see the type comment).
func (rs *RemoteShard) ClassifyBatch(fps []*fingerprint.Fingerprint, workers int) [][]string {
	_ = workers
	out := make([][]string, len(fps))
	if len(fps) == 0 {
		return out
	}
	batch := make([]string, len(fps))
	for i, f := range fps {
		packed, err := fingerprint.Pack(f)
		if err != nil {
			return out
		}
		batch[i] = packed
	}
	resp, err := rs.do(shardRequest{Op: OpClassify, Batch: batch}, rs.cfg.Timeout)
	if err != nil || len(resp.Accepts) != len(fps) {
		return out
	}
	return resp.Accepts
}

// Discriminate implements core.Shard. On exhausted retries it reports
// no scores, which concedes the discrimination to the other shards'
// candidates.
func (rs *RemoteShard) Discriminate(f *fingerprint.Fingerprint, candidates []string) (string, map[string]float64) {
	packed, err := fingerprint.Pack(f)
	if err != nil {
		return "", nil
	}
	resp, err := rs.do(shardRequest{Op: OpDiscriminate, Fingerprint: packed, Candidates: candidates}, rs.cfg.Timeout)
	if err != nil {
		return "", nil
	}
	return resp.Best, resp.Scores
}

// Enroll implements core.Shard: the training fingerprints ship packed,
// the shard server trains the classifier, and the reply's version stamp
// lands in the local cache — which is exactly what lets a verdict cache
// fronting the logical bank invalidate the entries that depended on
// this shard.
func (rs *RemoteShard) Enroll(name string, prints []*fingerprint.Fingerprint) error {
	packed := make([]string, len(prints))
	for i, f := range prints {
		p, err := fingerprint.Pack(f)
		if err != nil {
			return err
		}
		packed[i] = p
	}
	_, err := rs.do(shardRequest{Op: OpEnroll, Type: name, Prints: packed}, rs.cfg.EnrollTimeout)
	return err
}

// Version implements core.Shard from the local cache of the last
// version stamp observed on the wire (every shard response carries
// one). It never blocks on the network: verdict caches call it per
// request.
func (rs *RemoteShard) Version() uint64 { return rs.version.Load() }

// Types implements core.Shard: it asks the shard server for its type
// list (OpMeta), falling back to the last successfully fetched list
// when the shard is unreachable.
func (rs *RemoteShard) Types() []string {
	resp, err := rs.do(shardRequest{Op: OpMeta}, rs.cfg.Timeout)
	rs.typesMu.Lock()
	defer rs.typesMu.Unlock()
	if err == nil {
		rs.types = append([]string(nil), resp.Types...)
	}
	return append([]string(nil), rs.types...)
}

// Close severs every connection and fails outstanding requests.
func (rs *RemoteShard) Close() error {
	for _, sc := range rs.conns {
		sc.close()
	}
	return nil
}

// RemoteShard implements core.Shard over the wire.
var _ core.Shard = (*RemoteShard)(nil)

// shardResult is one completed shard round-trip.
type shardResult struct {
	resp shardResponse
	err  error
}

// shardConn is one persistent pipelined connection to a shard server,
// correlated by line echo exactly like the pooled gateway client's
// poolConn. The first line on every fresh connection is the hello
// handshake; the dial fails — and the next attempt redials — unless the
// peer announces ModeShard at a compatible protocol version.
type shardConn struct {
	addr string
	rs   *RemoteShard

	mu   sync.Mutex
	conn net.Conn
	// gen counts connection incarnations. The line counter resets on
	// every redial, so a response still sitting in a dead pump's read
	// buffer could otherwise correlate to a waiter registered on the
	// replacement connection; each pump carries its generation and
	// deliveries from past generations are discarded.
	gen     uint64
	lines   uint64
	waiters map[uint64]chan shardResult
	closed  bool
}

// roundTrip sends one request line and waits for its response.
func (sc *shardConn) roundTrip(body []byte, timeout time.Duration) (shardResponse, error) {
	deadline := time.Now().Add(timeout)

	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return shardResponse{}, fmt.Errorf("iotssp: remote shard closed")
	}
	if sc.conn == nil {
		if err := sc.dialLocked(deadline); err != nil {
			sc.mu.Unlock()
			return shardResponse{}, err
		}
	}
	conn := sc.conn
	sc.lines++
	ch := make(chan shardResult, 1)
	sc.waiters[sc.lines] = ch
	conn.SetWriteDeadline(deadline)
	if _, err := conn.Write(body); err != nil {
		sc.dropLocked(conn, fmt.Errorf("iotssp: sending shard request: %w", err))
		sc.mu.Unlock()
		return shardResponse{}, fmt.Errorf("iotssp: sending shard request: %w", err)
	}
	sc.mu.Unlock()

	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case res := <-ch:
		return res.resp, res.err
	case <-timer.C:
		// A missed deadline means the connection or the shard is wedged;
		// sever it so pipelined requests fail fast and the next attempt
		// redials.
		sc.fail(conn, fmt.Errorf("iotssp: shard %s: deadline exceeded", sc.addr))
		return shardResponse{}, fmt.Errorf("iotssp: shard %s: deadline exceeded", sc.addr)
	}
}

// dialLocked establishes the connection and performs the hello
// handshake as line 1. Callers hold mu; the handshake itself waits
// outside the lock (the read pump needs mu to deliver the reply).
func (sc *shardConn) dialLocked(deadline time.Time) error {
	d := net.Dialer{Deadline: deadline}
	conn, err := d.Dial("tcp", sc.addr)
	if err != nil {
		return fmt.Errorf("iotssp: dialing shard %s: %w", sc.addr, err)
	}
	if conn.LocalAddr().String() == conn.RemoteAddr().String() {
		// Loopback self-connect guard, as in the gateway pool.
		conn.Close()
		return fmt.Errorf("iotssp: dialing shard %s: self-connection", sc.addr)
	}
	sc.conn = conn
	sc.gen++
	sc.lines = 1
	helloCh := make(chan shardResult, 1)
	sc.waiters[1] = helloCh
	sc.rs.dials.Add(1)
	go sc.readPump(conn, sc.gen)

	hello, _ := json.Marshal(shardRequest{Op: OpHello, V: ProtocolVersion})
	conn.SetWriteDeadline(deadline)
	if _, err := conn.Write(append(hello, '\n')); err != nil {
		sc.dropLocked(conn, err)
		return fmt.Errorf("iotssp: shard hello to %s: %w", sc.addr, err)
	}

	// Wait for the hello reply outside the lock.
	sc.mu.Unlock()
	var res shardResult
	timer := time.NewTimer(time.Until(deadline))
	select {
	case res = <-helloCh:
	case <-timer.C:
		res = shardResult{err: fmt.Errorf("iotssp: shard hello to %s: deadline exceeded", sc.addr)}
	}
	timer.Stop()
	sc.mu.Lock()

	if res.err != nil {
		sc.dropLocked(conn, res.err)
		return res.err
	}
	if res.resp.Mode != ModeShard {
		err := fmt.Errorf("iotssp: %s is not a shard server (mode %q, protocol v%d)", sc.addr, res.resp.Mode, res.resp.V)
		sc.dropLocked(conn, err)
		return err
	}
	if res.resp.V != ProtocolVersion {
		err := fmt.Errorf("iotssp: shard %s speaks protocol v%d, want v%d", sc.addr, res.resp.V, ProtocolVersion)
		sc.dropLocked(conn, err)
		return err
	}
	sc.rs.observeVersion(res.resp.Version)
	if sc.conn != conn {
		// The connection died while we were waiting on the handshake.
		return fmt.Errorf("iotssp: shard %s: connection lost during handshake", sc.addr)
	}
	return nil
}

// readPump decodes response lines and hands each to its waiter until
// the connection breaks. A pump that outlives its connection (buffered
// lines survive the socket close) must not deliver into a younger
// incarnation's waiters — its generation no longer matches and the
// response is dropped.
func (sc *shardConn) readPump(conn net.Conn, gen uint64) {
	br := bufio.NewReader(conn)
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			sc.fail(conn, fmt.Errorf("iotssp: reading shard response: %w", err))
			return
		}
		var resp shardResponse
		if err := json.Unmarshal(line, &resp); err != nil {
			sc.fail(conn, fmt.Errorf("iotssp: decoding shard response: %w", err))
			return
		}
		sc.mu.Lock()
		if sc.gen != gen {
			sc.mu.Unlock()
			return
		}
		ch := sc.waiters[resp.Line]
		delete(sc.waiters, resp.Line)
		sc.mu.Unlock()
		if ch != nil {
			ch <- shardResult{resp: resp}
		}
	}
}

// fail severs conn and fails every outstanding request.
func (sc *shardConn) fail(conn net.Conn, err error) {
	sc.mu.Lock()
	sc.dropLocked(conn, err)
	sc.mu.Unlock()
}

// dropLocked severs conn (if still current) and fails its waiters.
// Callers hold mu.
func (sc *shardConn) dropLocked(conn net.Conn, err error) {
	if sc.conn != conn {
		return
	}
	conn.Close()
	sc.conn = nil
	waiters := sc.waiters
	sc.waiters = make(map[uint64]chan shardResult)
	for _, ch := range waiters {
		ch <- shardResult{err: err}
	}
}

// close permanently severs the connection.
func (sc *shardConn) close() {
	sc.mu.Lock()
	sc.closed = true
	if sc.conn != nil {
		sc.dropLocked(sc.conn, fmt.Errorf("iotssp: remote shard closed"))
	}
	sc.mu.Unlock()
}
