package iotssp

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fingerprint"
)

// startServer serves svc with cfg on an ephemeral loopback listener and
// returns its address. Cleanup closes the server.
func startServer(t *testing.T, svc *Service, cfg ServerConfig) (*Server, string) {
	t.Helper()
	srv := NewServer(svc, cfg)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close() })
	return srv, lis.Addr().String()
}

// requestLine marshals one request line for raw-conn tests.
func requestLine(t *testing.T, mac string, fp *fingerprint.Fingerprint) []byte {
	t.Helper()
	report, err := fingerprint.MarshalReportPacked(mac, fp)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(Request{Fingerprint: report})
	if err != nil {
		t.Fatal(err)
	}
	return append(body, '\n')
}

// TestServerMalformedLinesKeepConnectionAlive interleaves good and bad
// request lines on one connection: every bad line must be answered with
// an error naming its line number, and the good lines around it must
// still be served on the same connection.
func TestServerMalformedLinesKeepConnectionAlive(t *testing.T) {
	svc, ds := testService(t)
	_, addr := startServer(t, svc, ServerConfig{})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	var payload []byte
	payload = append(payload, requestLine(t, "02:00:00:00:00:01", ds["Aria"][0])...)         // line 1: good
	payload = append(payload, []byte("this is not json\n")...)                               // line 2: bad JSON
	payload = append(payload, requestLine(t, "02:00:00:00:00:03", ds["HueBridge"][0])...)    // line 3: good
	payload = append(payload, []byte(`{"fingerprint":{"mac":"x","packed":"gA=="}}`+"\n")...) // line 4: bad matrix
	payload = append(payload, requestLine(t, "02:00:00:00:00:05", ds["Aria"][1])...)         // line 5: good
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}

	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	br := bufio.NewReader(conn)
	byLine := make(map[uint64]Response)
	for i := 0; i < 5; i++ {
		raw, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatalf("reading response %d: %v", i, err)
		}
		var resp Response
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatalf("decoding response %d: %v", i, err)
		}
		byLine[resp.Line] = resp
	}

	for _, line := range []uint64{2, 4} {
		resp, ok := byLine[line]
		if !ok {
			t.Fatalf("no response for bad line %d: %v", line, byLine)
		}
		if resp.Error == "" || !strings.Contains(resp.Error, fmt.Sprintf("line %d", line)) {
			t.Errorf("bad line %d error = %q, want the line number cited", line, resp.Error)
		}
		if resp.Retryable {
			t.Errorf("malformed line %d marked retryable", line)
		}
	}
	for line, wantType := range map[uint64]string{1: "Aria", 3: "HueBridge", 5: "Aria"} {
		resp, ok := byLine[line]
		if !ok {
			t.Fatalf("no response for good line %d", line)
		}
		if resp.Error != "" || resp.DeviceType != wantType {
			t.Errorf("good line %d after bad lines: %+v", line, resp)
		}
	}
}

// TestServerBatchesAcrossConnections drives eight one-shot clients
// concurrently against a BatchSize-4 server with a generous flush
// budget: the dispatcher must aggregate requests from different
// connections into shared flushes.
func TestServerBatchesAcrossConnections(t *testing.T) {
	svc, ds := testService(t)
	srv, addr := startServer(t, svc, ServerConfig{
		BatchSize:     4,
		FlushInterval: 500 * time.Millisecond,
	})

	const clients = 8
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := NewClient(addr)
			defer c.Close()
			mac := fmt.Sprintf("02:00:00:00:01:%02x", i)
			resp, err := c.Identify(context.Background(), mac, ds["Aria"][i%len(ds["Aria"])])
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			if resp.MAC != mac {
				t.Errorf("client %d: MAC echo %q", i, resp.MAC)
			}
		}(i)
	}
	wg.Wait()

	st := srv.Counters()
	if st.Requests != clients {
		t.Fatalf("requests = %d, want %d", st.Requests, clients)
	}
	if st.MaxBatch < 4 {
		t.Errorf("max batch = %d, want >= 4 (batches=%d, mean=%.1f)", st.MaxBatch, st.Batches, st.MeanBatch())
	}
	if st.ConnsAccepted != clients {
		t.Errorf("conns accepted = %d", st.ConnsAccepted)
	}
}

// TestServerBackpressureQueueFull floods a tiny-queue server with one
// pipelined burst: the server must answer the overflow with retryable
// errors instead of queueing it, and still serve what it admitted —
// with the connection left alive throughout.
func TestServerBackpressureQueueFull(t *testing.T) {
	svc, ds := testService(t)
	srv, addr := startServer(t, svc, ServerConfig{
		QueueCapacity: 2,
		BatchSize:     2,
		WriteQueue:    4096,
	})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	const burst = 400
	var payload []byte
	for i := 0; i < burst; i++ {
		payload = append(payload, requestLine(t, fmt.Sprintf("02:00:00:00:02:%02x", i%256), ds["Aria"][i%len(ds["Aria"])])...)
	}
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}

	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	br := bufio.NewReaderSize(conn, 1<<20)
	var served, refused int
	for i := 0; i < burst; i++ {
		raw, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatalf("response %d/%d: %v", i, burst, err)
		}
		var resp Response
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatal(err)
		}
		switch {
		case resp.Error == "":
			served++
		case resp.Retryable:
			refused++
			if !strings.Contains(resp.Error, "overloaded") {
				t.Errorf("retryable error = %q", resp.Error)
			}
		default:
			t.Errorf("unexpected hard error: %q", resp.Error)
		}
	}
	if served == 0 || refused == 0 {
		t.Fatalf("served=%d refused=%d: want both under overload", served, refused)
	}
	if st := srv.Counters(); st.Overloaded != uint64(refused) {
		t.Errorf("stats.Overloaded = %d, responses said %d", st.Overloaded, refused)
	}

	// The connection is still usable after the storm.
	if _, err := conn.Write(requestLine(t, "02:00:00:00:03:01", ds["HueBridge"][0])); err != nil {
		t.Fatal(err)
	}
	deadlineScan(t, br, func(resp Response) bool { return resp.Error == "" && resp.DeviceType == "HueBridge" })
}

// deadlineScan reads responses until pred accepts one (overload errors
// from the tail of a previous storm may still be in flight).
func deadlineScan(t *testing.T, br *bufio.Reader, pred func(Response) bool) {
	t.Helper()
	for {
		raw, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatalf("scanning for response: %v", err)
		}
		var resp Response
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatal(err)
		}
		if pred(resp) {
			return
		}
	}
}

// TestServerConnectionLimit verifies the bounded accept loop: beyond
// MaxConns the server answers with a retryable refusal and closes.
func TestServerConnectionLimit(t *testing.T) {
	svc, ds := testService(t)
	srv, addr := startServer(t, svc, ServerConfig{MaxConns: 1})

	first := NewClient(addr)
	defer first.Close()
	if _, err := first.Identify(context.Background(), "02:00:00:00:04:01", ds["Aria"][0]); err != nil {
		t.Fatal(err)
	}

	second, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	second.SetReadDeadline(time.Now().Add(10 * time.Second))
	raw, err := bufio.NewReader(second).ReadBytes('\n')
	if err != nil {
		t.Fatalf("reading refusal: %v", err)
	}
	var resp Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Retryable || !strings.Contains(resp.Error, "connection capacity") {
		t.Fatalf("refusal = %+v", resp)
	}
	if _, err := bufio.NewReader(second).ReadByte(); err == nil {
		t.Error("refused connection left open")
	}
	if st := srv.Counters(); st.ConnsRefused != 1 {
		t.Errorf("conns refused = %d", st.ConnsRefused)
	}

	// The admitted connection keeps working.
	if _, err := first.Identify(context.Background(), "02:00:00:00:04:02", ds["Aria"][1]); err != nil {
		t.Errorf("admitted connection broken after refusal: %v", err)
	}
}

// TestServerOutOfOrderResponsesCarryCorrelation pipelines distinct
// fingerprints on one connection and checks every response can be
// matched to its request by MAC and line, whatever the arrival order.
func TestServerOutOfOrderResponsesCarryCorrelation(t *testing.T) {
	svc, ds := testService(t)
	_, addr := startServer(t, svc, ServerConfig{BatchSize: 4, FlushInterval: 20 * time.Millisecond})

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	types := []string{"Aria", "HueBridge", "EdimaxCam", "WeMoSwitch"}
	var payload []byte
	want := make(map[uint64]string) // line -> expected MAC
	for i, typ := range types {
		mac := fmt.Sprintf("02:00:00:00:05:%02x", i)
		want[uint64(i+1)] = mac
		payload = append(payload, requestLine(t, mac, ds[typ][0])...)
	}
	if _, err := conn.Write(payload); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	br := bufio.NewReader(conn)
	for range types {
		raw, err := br.ReadBytes('\n')
		if err != nil {
			t.Fatal(err)
		}
		var resp Response
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatal(err)
		}
		mac, ok := want[resp.Line]
		if !ok {
			t.Fatalf("response for unknown line %d", resp.Line)
		}
		delete(want, resp.Line)
		if resp.MAC != mac {
			t.Errorf("line %d: MAC %q, want %q", resp.Line, resp.MAC, mac)
		}
	}
	if len(want) != 0 {
		t.Errorf("lines never answered: %v", want)
	}
}
