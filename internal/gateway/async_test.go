package gateway

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/enforce"
	"repro/internal/fingerprint"
	"repro/internal/iotssp"
	"repro/internal/packet"
	"repro/internal/sniff"
)

// gatedIdentifier blocks every Identify call until its gate is closed
// (or the context expires), letting tests observe the gateway between
// enqueue and result.
type gatedIdentifier struct {
	gate chan struct{}
	resp iotssp.Response
}

func (gi *gatedIdentifier) Identify(ctx context.Context, mac string, fp *fingerprint.Fingerprint) (iotssp.Response, error) {
	select {
	case <-gi.gate:
		r := gi.resp
		r.MAC = mac
		return r, nil
	case <-ctx.Done():
		return iotssp.Response{}, ctx.Err()
	}
}

// synthCapture fabricates a minimal completed setup capture for mac.
func synthCapture(mac packet.MAC, at time.Time) sniff.Capture {
	var pkts []*packet.Packet
	for i := 0; i < 3; i++ {
		pkts = append(pkts, &packet.Packet{
			Timestamp: at.Add(time.Duration(i) * time.Second),
			Eth:       &packet.Ethernet{Src: mac, Dst: gwMAC},
		})
	}
	return sniff.Capture{MAC: mac, Packets: pkts}
}

func TestAsyncQuarantineUntilResultApplied(t *testing.T) {
	gi := &gatedIdentifier{
		gate: make(chan struct{}),
		resp: iotssp.Response{Known: true, DeviceType: "Aria", Level: "trusted"},
	}
	g := New(gatewayConfig(true), gi)
	defer g.Close()
	mac := packet.MustParseMAC("02:de:ad:be:ef:01")

	g.onSetupComplete(synthCapture(mac, t0))

	// The identifier is gated: the device must already sit in strict
	// quarantine, with no Event yet.
	rule, ok := g.Engine().RuleFor(mac)
	if !ok || rule.Level != enforce.Strict {
		t.Fatalf("quarantine rule = %+v (ok=%v), want strict", rule, ok)
	}
	if len(g.Events) != 0 {
		t.Fatalf("premature events: %+v", g.Events)
	}
	if g.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", g.Pending())
	}

	close(gi.gate)
	g.Drain()

	if g.Pending() != 0 {
		t.Errorf("Pending() after Drain = %d, want 0", g.Pending())
	}
	if len(g.Events) != 1 {
		t.Fatalf("got %d events after drain, want 1", len(g.Events))
	}
	ev := g.Events[0]
	if ev.Err != nil || !ev.Known || ev.DeviceType != "Aria" || ev.Level != enforce.Trusted {
		t.Errorf("event = %+v, want known Aria trusted", ev)
	}
	rule, ok = g.Engine().RuleFor(mac)
	if !ok || rule.Level != enforce.Trusted {
		t.Errorf("rule after drain = %+v (ok=%v), want trusted", rule, ok)
	}
	if _, ok := g.PSK().KeyFor(mac); !ok {
		t.Error("no PSK issued after successful identification")
	}
}

func TestAsyncIdentificationTimeout(t *testing.T) {
	gi := &gatedIdentifier{gate: make(chan struct{})} // never released
	cfg := gatewayConfig(true)
	cfg.IdentTimeout = 20 * time.Millisecond
	g := New(cfg, gi)
	defer g.Close()
	mac := packet.MustParseMAC("02:de:ad:be:ef:02")

	g.onSetupComplete(synthCapture(mac, t0))
	g.Drain()

	if len(g.Events) != 1 {
		t.Fatalf("got %d events, want 1", len(g.Events))
	}
	if !errors.Is(g.Events[0].Err, context.DeadlineExceeded) {
		t.Errorf("event error = %v, want deadline exceeded", g.Events[0].Err)
	}
	if len(g.Notifications) != 1 || g.Notifications[0].Err == nil {
		t.Fatalf("timeout not surfaced as a notification: %+v", g.Notifications)
	}
	if s := g.Notifications[0].String(); s == "" {
		t.Error("empty notification text")
	}
	rule, ok := g.Engine().RuleFor(mac)
	if !ok || rule.Level != enforce.Strict {
		t.Errorf("rule after timeout = %+v (ok=%v), want strict quarantine", rule, ok)
	}
}

func TestAsyncQueueOverflowFailsSafe(t *testing.T) {
	gi := &gatedIdentifier{
		gate: make(chan struct{}),
		resp: iotssp.Response{Known: true, DeviceType: "Aria", Level: "trusted"},
	}
	cfg := gatewayConfig(true)
	cfg.IdentWorkers = 1
	cfg.IdentQueue = 1
	g := New(cfg, gi)
	defer g.Close()

	macs := make([]packet.MAC, 4)
	for i := range macs {
		macs[i] = packet.MustParseMAC(fmt.Sprintf("02:de:ad:be:ef:%02x", 0x10+i))
	}
	// First capture occupies the lone worker, second fills the queue.
	// Give the worker a moment to take the first job off the queue so
	// the arithmetic below is deterministic.
	g.onSetupComplete(synthCapture(macs[0], t0))
	deadline := time.Now().Add(time.Second)
	for len(g.jobs) > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	g.onSetupComplete(synthCapture(macs[1], t0.Add(time.Second)))
	g.onSetupComplete(synthCapture(macs[2], t0.Add(2*time.Second)))
	g.onSetupComplete(synthCapture(macs[3], t0.Add(3*time.Second)))

	// At least one of the late captures must have overflowed into an
	// immediate fail-safe event and notification.
	overflowEvents := 0
	for _, ev := range g.Events {
		if ev.Err != nil {
			overflowEvents++
		}
	}
	if overflowEvents == 0 {
		t.Fatalf("no overflow events; events = %+v", g.Events)
	}
	if len(g.Notifications) != overflowEvents {
		t.Errorf("%d overflow events but %d notifications", overflowEvents, len(g.Notifications))
	}
	for _, mac := range macs {
		rule, ok := g.Engine().RuleFor(mac)
		if !ok || rule.Level != enforce.Strict {
			t.Errorf("%s: rule = %+v (ok=%v), want strict quarantine", mac, rule, ok)
		}
	}

	close(gi.gate)
	g.Drain()
	if got := len(g.Events); got != 4 {
		t.Errorf("got %d events after drain, want 4", got)
	}
}

func TestQuarantineFlowRulesRemovedOnVerdict(t *testing.T) {
	// Devices identified asynchronously pass through a strict quarantine
	// rule whose cookie differs from the final rule's. Its compiled flow
	// entries must be removed when the verdict replaces it — otherwise
	// every device quarantined in the same window keeps strict-overlay
	// reachability to the others forever.
	gi := &gatedIdentifier{
		gate: make(chan struct{}),
		resp: iotssp.Response{Known: true, DeviceType: "Aria", Level: "trusted"},
	}
	g := New(gatewayConfig(true), gi)
	defer g.Close()

	macA := packet.MustParseMAC("02:de:ad:be:ef:40")
	macB := packet.MustParseMAC("02:de:ad:be:ef:41")
	g.onSetupComplete(synthCapture(macA, t0))
	g.onSetupComplete(synthCapture(macB, t0.Add(time.Second)))
	close(gi.gate)
	g.Drain()

	for _, mac := range []packet.MAC{macA, macB} {
		quarantine := enforce.Rule{DeviceMAC: mac, Level: enforce.Strict}
		if n := g.Table().RemoveByCookie(quarantine.Hash()); n != 0 {
			t.Errorf("%s: %d stale quarantine flow rules survived the verdict", mac, n)
		}
		rule, ok := g.Engine().RuleFor(mac)
		if !ok || rule.Level != enforce.Trusted {
			t.Errorf("%s: final rule = %+v (ok=%v), want trusted", mac, rule, ok)
		}
	}
}

func TestCloseFailsSafe(t *testing.T) {
	gi := &gatedIdentifier{gate: make(chan struct{})}
	g := New(gatewayConfig(true), gi)
	g.Close()
	g.Close() // idempotent

	mac := packet.MustParseMAC("02:de:ad:be:ef:20")
	g.onSetupComplete(synthCapture(mac, t0))
	if len(g.Events) != 1 || g.Events[0].Err == nil {
		t.Fatalf("capture after Close not failed safe: %+v", g.Events)
	}
	rule, ok := g.Engine().RuleFor(mac)
	if !ok || rule.Level != enforce.Strict {
		t.Errorf("rule = %+v (ok=%v), want strict", rule, ok)
	}
}

func TestAsyncManyDevicesConcurrently(t *testing.T) {
	// A burst of captures across a multi-worker pool: every device gets
	// exactly one event and the events arrive in queue order.
	gi := &gatedIdentifier{
		gate: make(chan struct{}),
		resp: iotssp.Response{Known: true, DeviceType: "Aria", Level: "trusted"},
	}
	cfg := gatewayConfig(true)
	cfg.IdentWorkers = 4
	g := New(cfg, gi)
	defer g.Close()

	const devices = 16
	close(gi.gate) // identifier answers immediately
	for i := 0; i < devices; i++ {
		mac := packet.MustParseMAC(fmt.Sprintf("02:de:ad:be:ef:%02x", 0x30+i))
		g.onSetupComplete(synthCapture(mac, t0.Add(time.Duration(i)*time.Second)))
	}
	g.Drain()

	if len(g.Events) != devices {
		t.Fatalf("got %d events, want %d", len(g.Events), devices)
	}
	seen := make(map[packet.MAC]bool)
	for _, ev := range g.Events {
		if ev.Err != nil {
			t.Errorf("event error: %v", ev.Err)
		}
		if seen[ev.MAC] {
			t.Errorf("duplicate event for %s", ev.MAC)
		}
		seen[ev.MAC] = true
	}
}

// batchRecorder records every IdentifyBatch call; the first call blocks
// on the gate so subsequent captures pile up in the queue and must
// arrive as one streamed batch.
type batchRecorder struct {
	gate chan struct{}

	mu    sync.Mutex
	calls [][]string
}

func (br *batchRecorder) respond(macs []string) ([]iotssp.Response, []error) {
	resps := make([]iotssp.Response, len(macs))
	for i, mac := range macs {
		resps[i] = iotssp.Response{MAC: mac, Known: true, DeviceType: "Aria", Stage: "classification", Level: "trusted"}
	}
	return resps, make([]error, len(macs))
}

func (br *batchRecorder) Identify(ctx context.Context, mac string, fp *fingerprint.Fingerprint) (iotssp.Response, error) {
	resps, _ := br.IdentifyBatch(ctx, []string{mac}, []*fingerprint.Fingerprint{fp})
	return resps[0], nil
}

func (br *batchRecorder) IdentifyBatch(ctx context.Context, macs []string, fps []*fingerprint.Fingerprint) ([]iotssp.Response, []error) {
	br.mu.Lock()
	br.calls = append(br.calls, macs)
	first := len(br.calls) == 1
	br.mu.Unlock()
	if first {
		select {
		case <-br.gate:
		case <-ctx.Done():
		}
	}
	return br.respond(macs)
}

func (br *batchRecorder) snapshot() [][]string {
	br.mu.Lock()
	defer br.mu.Unlock()
	out := make([][]string, len(br.calls))
	copy(out, br.calls)
	return out
}

// TestGatewayStreamsQueuedCapturesAsBatches: captures completing while
// an identification is in flight are drained into one streamed batch
// per worker wakeup instead of one round-trip each.
func TestGatewayStreamsQueuedCapturesAsBatches(t *testing.T) {
	br := &batchRecorder{gate: make(chan struct{})}
	cfg := gatewayConfig(true)
	cfg.IdentWorkers = 1
	cfg.IdentBatch = 16
	g := New(cfg, br)
	defer g.Close()

	const devicesN = 9
	macs := make([]packet.MAC, devicesN)
	for i := range macs {
		macs[i] = packet.MustParseMAC(fmt.Sprintf("02:de:ad:00:00:%02x", i+1))
	}
	g.onSetupComplete(synthCapture(macs[0], t0))
	// Wait until the lone worker is parked inside the first (gated)
	// identification, then queue the rest behind it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(br.snapshot()) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first identification never started")
		}
		time.Sleep(time.Millisecond)
	}
	for _, mac := range macs[1:] {
		g.onSetupComplete(synthCapture(mac, t0))
	}
	close(br.gate)
	g.Drain()

	if len(g.Events) != devicesN {
		t.Fatalf("events = %d, want %d", len(g.Events), devicesN)
	}
	for _, ev := range g.Events {
		if ev.Err != nil || !ev.Known || ev.Level != enforce.Trusted {
			t.Fatalf("event = %+v", ev)
		}
	}
	calls := br.snapshot()
	total := 0
	maxBatch := 0
	for _, c := range calls {
		total += len(c)
		if len(c) > maxBatch {
			maxBatch = len(c)
		}
	}
	if total != devicesN {
		t.Fatalf("identifier saw %d captures across %d calls, want %d", total, len(calls), devicesN)
	}
	if len(calls) >= devicesN || maxBatch < 2 {
		t.Fatalf("captures were not streamed: %d calls, largest batch %d (want fewer calls than captures)", len(calls), maxBatch)
	}
}
