package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/fingerprint"
	"repro/internal/iotssp"
	"repro/internal/ml"
	"repro/internal/stats"
	"repro/internal/vulndb"
)

// RebalanceConfig parameterizes the live-topology experiment: a
// three-partition cluster (local source, replicated remote target,
// local bystander) rebalanced mid-run by the control plane — two type
// migrations and a rolling shard-group member replacement — while
// gateway clients keep replaying the workload.
type RebalanceConfig struct {
	// Types is the number of enrolled device-types (0 means 9); the
	// partition deals them round-robin over the three partitions.
	Types int
	// Runs is the number of training fingerprints per type (0 means 8).
	Runs int
	// Trees is the per-type forest size (0 means 100).
	Trees int
	// ProbeModels is the number of distinct probe fingerprints per type
	// the workload draws from (0 means 2).
	ProbeModels int
	// Requests is the total identification requests replayed per phase
	// (0 means 384).
	Requests int
	// Gateways is the number of concurrent gateway clients (0 means 2),
	// InFlight each gateway's concurrent requests (0 means 8).
	Gateways int
	InFlight int
	// Replicas is the remote target partition's shard-group member count
	// (0 means 2; must be >= 2 so a member can be replaced live).
	Replicas int
	// BatchSize, FlushInterval and Workers tune the front server's
	// dispatcher as in ServiceConfig. CacheSize sizes the verdict cache
	// of the invalidation phase (0 selects the default); the timed
	// phases run uncached so every request exercises the topology.
	BatchSize     int
	FlushInterval time.Duration
	CacheSize     int
	Workers       int
	// Mint selects the minting strategy of every member replacement the
	// experiment runs (controlplane.MintAuto, MintSnapshot or
	// MintReplay); sentinel-eval's -mint flag maps onto it. Whatever the
	// roll uses, the mint audit times both paths and asserts them
	// bit-identical.
	Mint controlplane.MintStrategy
	// NoRebalance replays the live phase without any topology change
	// (debug escape hatch; the headline assertions are skipped).
	NoRebalance bool
	// MaxP99Ratio fails the experiment unless the rebalancing run's p99
	// latency stays within this multiple of the steady run's p99. 0
	// reports the ratio without asserting (callers gate the assertion on
	// GOMAXPROCS, like the replicated experiment).
	MaxP99Ratio float64
	// Wire selects the v4 wire compression on every client leg (gateway
	// pools and the group's member links), as in DistributedConfig. The
	// rebalance experiment reports no compression gain of its own — the
	// distributed/replicated experiments own that assertion — but the
	// drills then exercise dictionary resets across member replacement.
	Wire iotssp.WireMode
	// Seed drives dataset generation, training and workload sampling.
	Seed int64
}

func (c RebalanceConfig) withDefaults() (RebalanceConfig, error) {
	if c.Types == 0 {
		c.Types = 9
	}
	if c.Types < 6 || c.Types >= len(devices.Names()) {
		return c, fmt.Errorf("experiments: rebalance Types must be in [6, %d) so each of the three partitions keeps at least one type through the migrations", len(devices.Names()))
	}
	if c.Runs == 0 {
		c.Runs = 8
	}
	if c.Trees == 0 {
		c.Trees = 100
	}
	if c.ProbeModels == 0 {
		c.ProbeModels = 2
	}
	if c.Requests == 0 {
		c.Requests = 384
	}
	if c.Gateways == 0 {
		c.Gateways = 2
	}
	if c.InFlight == 0 {
		c.InFlight = 8
	}
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.Replicas < 2 {
		return c, fmt.Errorf("experiments: rebalance Replicas must be >= 2 (member replacement needs a group)")
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = 500 * time.Microsecond
	}
	if c.CacheSize == 0 {
		c.CacheSize = iotssp.DefaultCacheSize
	}
	return c, nil
}

// phase shapes the experiment's replay phases.
func (c RebalanceConfig) phase() wirePhase {
	return wirePhase{Requests: c.Requests, Gateways: c.Gateways, InFlight: c.InFlight, Seed: c.Seed, Wire: c.Wire}
}

// rebalanceShards is the experiment's fixed partition count: a local
// source (0), a replicated remote target (1), and a local bystander (2)
// whose cached verdicts must survive the rebalance untouched.
const rebalanceShards = 3

// RebalanceResult is the outcome of the live-topology experiment.
type RebalanceResult struct {
	EnrolledTypes int
	Replicas      int
	Requests      int
	Gateways      int

	// MigratedOut is the type moved from the local source partition to
	// the remote group (local→remote); MigratedIn the type moved from
	// the group back to the local source (remote→local).
	MigratedOut string
	MigratedIn  string

	// SteadyPerSec is the initial topology with no rebalance;
	// FinalPerSec the post-rebalance topology (migrations and member
	// replacement applied before serving); LivePerSec the run with the
	// rebalance happening mid-flight.
	SteadyPerSec float64
	FinalPerSec  float64
	LivePerSec   float64

	// SteadyP50/SteadyP99 are the steady run's latencies; LiveP50/
	// LiveP99 the rebalancing run's. P99Ratio is LiveP99/SteadyP99 —
	// what the staged rollout cost the tail.
	SteadyP50, SteadyP99 time.Duration
	LiveP50, LiveP99     time.Duration
	P99Ratio             float64

	// Lost counts live-run requests that returned no verdict (must be
	// zero). Mismatches counts live verdicts equal to neither the
	// initial-topology nor the final-topology baseline at that index
	// (must be zero: during a staged rollout every verdict is one of the
	// two, depending on which side of the flip it ran).
	Lost       int
	Mismatches int

	// Rebalanced/Replaced report that the mid-run migrations and the
	// member replacement actually ran.
	Rebalanced bool
	Replaced   bool

	// Mint audit, run on the live cluster after its rebalance: the
	// replacement-minting strategy the rolls used, the measured duration
	// of each minting path — snapshot state transfer vs history replay —
	// their ratio, and the bit-identity of the two minted banks.
	MintStrategy     string
	SnapshotMint     time.Duration
	ReplayMint       time.Duration
	MintSpeedup      float64
	MintBitIdentical bool

	// Invalidation audit on a warmed cache: exactly the verdicts
	// depending on the two migrated types' partitions recompute, and the
	// Invalidations counter moves by exactly Dependent — one stale drop
	// per dependent entry, however many version bumps the rollout made.
	DependentProbes   int
	IndependentProbes int
	Invalidations     uint64

	// Metrics is the run's single JSON stats snapshot.
	Metrics *MetricsSnapshot
}

// rebalanceTopology deals the types over the three partitions:
// partition 1 is the remote shard group, 0 and 2 are local.
func rebalanceTopology(train map[string][]*fingerprint.Fingerprint, replicas int) controlplane.Topology {
	names := make([]string, 0, len(train))
	for name := range train {
		names = append(names, name)
	}
	parts := make([]controlplane.PartitionSpec, 0, rebalanceShards)
	for s, types := range controlplane.RoundRobin(names, rebalanceShards) {
		spec := controlplane.PartitionSpec{Types: types, Local: s != 1}
		if s == 1 {
			spec.Members = replicas
		}
		parts = append(parts, spec)
	}
	return controlplane.Topology{Partitions: parts}
}

// assembleRebalance starts one cluster of the experiment's shape.
func assembleRebalance(cfg RebalanceConfig, coreCfg core.BankConfig, scfg iotssp.ServerConfig, train map[string][]*fingerprint.Fingerprint, cacheSize int) (*controlplane.Cluster, error) {
	return controlplane.Assemble(controlplane.ClusterConfig{
		Core:   coreCfg,
		Server: scfg,
		Group: iotssp.ShardGroupConfig{
			Shard: iotssp.RemoteShardConfig{
				MaxRetries:   1,
				RetryBackoff: 200 * time.Microsecond,
				MaxBackoff:   time.Millisecond,
				Seed:         cfg.Seed + 211,
				Wire:         cfg.Wire,
			},
			ProbeBackoff: 20 * time.Millisecond,
		},
		CacheSize: cacheSize,
		DB:        vulndb.Seeded(),
	}, rebalanceTopology(train, cfg.Replicas), train)
}

// applyRebalance runs the experiment's scripted topology change on a
// cluster: migrate the source partition's first type to the group
// (local→remote), migrate the group's first type to the source
// (remote→local), then roll the group's first member under the given
// minting strategy.
func applyRebalance(cl *controlplane.Cluster, out, in string, replace bool, mint controlplane.MintStrategy) error {
	if err := cl.MigrateType(out, 1); err != nil {
		return err
	}
	if err := cl.MigrateType(in, 0); err != nil {
		return err
	}
	if !replace {
		return nil
	}
	return cl.ReplaceMemberWith(1, 0, mint)
}

// RunRebalance proves the control plane's staged rollouts on a live
// serving topology:
//
//   - Steady: the initial three-partition topology (local source,
//     Replicas-member remote shard group, local bystander) replays the
//     workload untouched — the latency reference and the first verdict
//     baseline.
//   - Final: a twin cluster has the whole rebalance — both type
//     migrations and the rolling member replacement — applied BEFORE
//     serving, then replays the same workload: the second verdict
//     baseline. Training and replay are deterministic, so any live-run
//     verdict must equal one of the two baselines at its index.
//   - Live: a third twin serves the workload while the control plane
//     rebalances mid-flight — at a third of the run both migrations
//     (train-on-target, health-gate, flip-route, drain-source), at
//     two-thirds the rolling member replacement. Zero lost verdicts,
//     every verdict bit-equal to one of the baselines, and p99 within
//     MaxP99Ratio of the steady run.
//   - Invalidation audit: on the still-steady cluster, a fresh cache is
//     warmed with probes whose verdicts depend only on the source
//     partition, only on the group partition, or only on the bystander;
//     the two migrations must invalidate exactly the dependent entries
//     — the Invalidations counter moves by exactly that count, once per
//     entry — and every bystander verdict must survive as a hit.
func RunRebalance(cfg RebalanceConfig) (*RebalanceResult, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	train, w, _, _, err := buildWireWorkload(cfg.Types, cfg.Runs, cfg.ProbeModels, cfg.Requests, cfg.Seed)
	if err != nil {
		return nil, err
	}
	coreCfg := core.BankConfig{Forest: ml.ForestConfig{Trees: cfg.Trees}, Seed: cfg.Seed}
	scfg := iotssp.ServerConfig{
		BatchSize:     cfg.BatchSize,
		FlushInterval: cfg.FlushInterval,
		Workers:       cfg.Workers,
	}

	res := &RebalanceResult{
		EnrolledTypes: cfg.Types,
		Replicas:      cfg.Replicas,
		Requests:      cfg.Requests,
		Gateways:      cfg.Gateways,
	}

	// Phase 1 — steady topology: latency reference, first baseline, and
	// afterwards the host of the invalidation audit.
	steadyCl, err := assembleRebalance(cfg, coreCfg, scfg, train, -1)
	if err != nil {
		return nil, err
	}
	defer steadyCl.Close()
	// The scripted moves: the source partition's first type goes out to
	// the group, the group's first type comes back in.
	res.MigratedOut = steadyCl.Bank().ShardTypes(0)[0]
	res.MigratedIn = steadyCl.Bank().ShardTypes(1)[0]

	steadyElapsed, steadyLats, steadyVerdicts, _, steadyLost := runWirePhase(steadyCl.Addr(), w, cfg.phase(), nil)
	if steadyLost > 0 {
		return nil, fmt.Errorf("steady phase lost %d verdicts with no topology change", steadyLost)
	}
	res.SteadyPerSec = float64(cfg.Requests) / steadyElapsed.Seconds()
	res.SteadyP50, res.SteadyP99 = latPercentiles(steadyLats)

	// Phase 2 — final topology: the whole rebalance applied up front,
	// then the same replay. Migrations retrain the moved types on their
	// targets, so post-flip verdicts differ from the steady baseline —
	// this run pins down what they must be.
	finalCl, err := assembleRebalance(cfg, coreCfg, scfg, train, -1)
	if err != nil {
		return nil, err
	}
	if err := applyRebalance(finalCl, res.MigratedOut, res.MigratedIn, true, cfg.Mint); err != nil {
		finalCl.Close()
		return nil, fmt.Errorf("pre-applying the rebalance: %w", err)
	}
	finalElapsed, _, finalVerdicts, _, finalLost := runWirePhase(finalCl.Addr(), w, cfg.phase(), nil)
	finalCl.Close()
	if finalLost > 0 {
		return nil, fmt.Errorf("final-topology phase lost %d verdicts with no mid-run change", finalLost)
	}
	res.FinalPerSec = float64(cfg.Requests) / finalElapsed.Seconds()

	// Phase 3 — live rebalance: same twin, topology changed mid-run.
	liveCl, err := assembleRebalance(cfg, coreCfg, scfg, train, -1)
	if err != nil {
		return nil, err
	}
	defer liveCl.Close()
	var rebalanceErr error
	var drills []wireDrill
	if !cfg.NoRebalance {
		drills = []wireDrill{
			{After: int64(cfg.Requests / 3), Fn: func() {
				if err := applyRebalance(liveCl, res.MigratedOut, res.MigratedIn, false, cfg.Mint); err != nil {
					rebalanceErr = err
					return
				}
				res.Rebalanced = true
			}},
			{After: int64(2 * cfg.Requests / 3), Fn: func() {
				if rebalanceErr != nil {
					return
				}
				if err := liveCl.ReplaceMemberWith(1, 0, cfg.Mint); err != nil {
					rebalanceErr = err
					return
				}
				res.Replaced = true
			}},
		}
	}
	liveElapsed, liveLats, liveVerdicts, poolStats, liveLost := runWirePhase(liveCl.Addr(), w, cfg.phase(), drills)
	if rebalanceErr != nil {
		return res, fmt.Errorf("mid-run rebalance failed: %w", rebalanceErr)
	}
	res.LivePerSec = float64(cfg.Requests) / liveElapsed.Seconds()
	res.LiveP50, res.LiveP99 = latPercentiles(liveLats)
	res.Lost = liveLost
	if res.SteadyP99 > 0 {
		res.P99Ratio = float64(res.LiveP99) / float64(res.SteadyP99)
	}

	// Mint audit: on the just-rebalanced live cluster (its history now
	// holds both migrations), time each replacement-minting path and
	// hold the two banks bit-identical — the state transfer must be a
	// pure speedup, never a different replica.
	res.MintStrategy = cfg.Mint.String()
	t0 := time.Now()
	viaSnap, err := liveCl.MintReplacement(1, controlplane.MintSnapshot)
	if err != nil {
		return res, fmt.Errorf("mint audit: snapshot mint: %w", err)
	}
	res.SnapshotMint = time.Since(t0)
	t0 = time.Now()
	viaReplay, err := liveCl.MintReplacement(1, controlplane.MintReplay)
	if err != nil {
		return res, fmt.Errorf("mint audit: replay mint: %w", err)
	}
	res.ReplayMint = time.Since(t0)
	snapA, err := viaSnap.Snapshot()
	if err != nil {
		return res, fmt.Errorf("mint audit: %w", err)
	}
	snapB, err := viaReplay.Snapshot()
	if err != nil {
		return res, fmt.Errorf("mint audit: %w", err)
	}
	res.MintBitIdentical = core.SnapshotsEqual(snapA, snapB)
	if !res.MintBitIdentical {
		return res, fmt.Errorf("mint audit: snapshot-minted member is not bit-identical to the replay-minted one")
	}
	if res.SnapshotMint > 0 {
		res.MintSpeedup = float64(res.ReplayMint) / float64(res.SnapshotMint)
	}

	res.Metrics = &MetricsSnapshot{Experiment: "rebalance", Components: liveCl.Snapshots()}
	for _, ps := range poolStats {
		res.Metrics.Components = append(res.Metrics.Components, ps.Snapshot())
	}
	res.Metrics.Components = append(res.Metrics.Components, stats.New("mint", struct {
		Strategy     string  `json:"strategy"`
		SnapshotNs   int64   `json:"snapshot_ns"`
		ReplayNs     int64   `json:"replay_ns"`
		Speedup      float64 `json:"speedup"`
		BitIdentical bool    `json:"bit_identical"`
	}{res.MintStrategy, res.SnapshotMint.Nanoseconds(), res.ReplayMint.Nanoseconds(), res.MintSpeedup, res.MintBitIdentical}))
	res.Metrics.ComputeBytesPerVerdict(cfg.Requests)

	// Dual-baseline bit-equality: each live verdict ran either before
	// its flip (steady baseline) or after it (final baseline).
	for i := range liveVerdicts {
		if !verdictsEqual(liveVerdicts[i], steadyVerdicts[i]) && !verdictsEqual(liveVerdicts[i], finalVerdicts[i]) {
			res.Mismatches++
		}
	}

	if liveLost > 0 {
		return res, fmt.Errorf("live rebalance lost %d of %d verdicts (want zero: staged rollouts must never drop a request)", liveLost, cfg.Requests)
	}
	if res.Mismatches > 0 {
		return res, fmt.Errorf("%d of %d live verdicts match neither the initial- nor the final-topology baseline (want every verdict bit-equal to one of them)", res.Mismatches, cfg.Requests)
	}
	if !cfg.NoRebalance {
		if !res.Rebalanced || !res.Replaced {
			return res, fmt.Errorf("rebalance drill incomplete: migrations=%v replacement=%v", res.Rebalanced, res.Replaced)
		}
		if cfg.MaxP99Ratio > 0 && res.P99Ratio > cfg.MaxP99Ratio {
			return res, fmt.Errorf("live-rebalance p99 %s is %.2fx the steady p99 %s (max %.2fx): the rollout was not absorbed",
				res.LiveP99, res.P99Ratio, res.SteadyP99, cfg.MaxP99Ratio)
		}
		// Invalidation audit on the still-steady cluster.
		if err := res.auditInvalidation(steadyCl, w, cfg.CacheSize); err != nil {
			return res, err
		}
	}
	return res, nil
}

// auditInvalidation warms a fresh cache over the cluster with probes of
// known partition dependencies, runs the two migrations, and asserts
// the exact invalidation arithmetic: Invalidations moves by exactly the
// dependent-entry count (one stale drop per entry, though the rollout
// bumps versions on both partitions), dependents recompute as misses,
// and bystander-only verdicts all survive as hits.
func (r *RebalanceResult) auditInvalidation(cl *controlplane.Cluster, w *serviceWorkload, cacheSize int) error {
	bank := cl.Bank()
	svc := cl.AuxService(cacheSize)

	// Classify each distinct probe by which partitions its verdict
	// depends on; unknown verdicts depend on every partition.
	var dependents, independents []*fingerprint.Fingerprint
	seenFP := make(map[uint64]bool)
	for _, fp := range w.probes {
		if h := fp.Hash(); seenFP[h] {
			continue
		} else {
			seenFP[h] = true
		}
		res := bank.Identify(fp)
		touches := map[int]bool{}
		if !res.Known {
			touches[0], touches[1], touches[2] = true, true, true
		} else {
			for _, name := range res.Accepted {
				if s, ok := bank.ShardOf(name); ok {
					touches[s] = true
				}
			}
		}
		if touches[0] || touches[1] {
			dependents = append(dependents, fp)
		} else {
			independents = append(independents, fp)
		}
	}
	r.DependentProbes, r.IndependentProbes = len(dependents), len(independents)
	if len(dependents) == 0 {
		return fmt.Errorf("invalidation audit degenerate: no probe depends on the migrating partitions")
	}

	// Warm every probe, then rebalance.
	for i, fp := range append(append([]*fingerprint.Fingerprint(nil), dependents...), independents...) {
		if resp := svc.Identify(fmt.Sprintf("02:f6:00:00:00:%02x", i), fp); resp.Error != "" {
			return fmt.Errorf("warming audit probe %d: %s", i, resp.Error)
		}
	}
	st0 := svc.CacheStats()
	if err := applyRebalance(cl, r.MigratedOut, r.MigratedIn, false, controlplane.MintAuto); err != nil {
		return fmt.Errorf("audit rebalance: %w", err)
	}
	for i, fp := range append(append([]*fingerprint.Fingerprint(nil), dependents...), independents...) {
		svc.Identify(fmt.Sprintf("02:f6:00:00:01:%02x", i), fp)
	}
	st1 := svc.CacheStats()
	r.Invalidations = st1.Invalidations - st0.Invalidations

	if got, want := r.Invalidations, uint64(len(dependents)); got != want {
		return fmt.Errorf("migration invalidated %d cached verdicts, want exactly %d (one stale drop per dependent entry, nothing double-counted across the rollout's version bumps)", got, want)
	}
	if got, want := st1.Misses-st0.Misses, uint64(len(dependents)); got != want {
		return fmt.Errorf("%d cache misses after the migrations, want %d (exactly the dependent verdicts recompute)", got, want)
	}
	if got, want := st1.Hits-st0.Hits, uint64(len(independents)); got != want {
		return fmt.Errorf("%d cache hits after the migrations, want %d (bystander verdicts must survive)", got, want)
	}
	return nil
}

// RenderRebalance formats the live-topology experiment for the
// terminal.
func (r *RebalanceResult) RenderRebalance() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Live topology rebalance — %d types over %d partitions (group of %d), %d requests, %d gateways\n",
		r.EnrolledTypes, rebalanceShards, r.Replicas, r.Requests, r.Gateways)
	fmt.Fprintf(&sb, "moves: %q local->group, %q group->local, then roll group member 0\n", r.MigratedOut, r.MigratedIn)
	fmt.Fprintf(&sb, "%-42s %12s %10s %10s\n", "mode", "requests/s", "p50", "p99")
	fmt.Fprintf(&sb, "%-42s %12.1f %10s %10s\n", "steady (initial topology)", r.SteadyPerSec, r.SteadyP50, r.SteadyP99)
	fmt.Fprintf(&sb, "%-42s %12.1f %10s %10s\n", "final (rebalance applied up front)", r.FinalPerSec, "-", "-")
	fmt.Fprintf(&sb, "%-42s %12.1f %10s %10s\n", "live (rebalance mid-run)", r.LivePerSec, r.LiveP50, r.LiveP99)
	fmt.Fprintf(&sb, "verdicts: %d lost, %d outside the two baselines; p99 ratio %.2fx vs steady\n",
		r.Lost, r.Mismatches, r.P99Ratio)
	if r.Rebalanced {
		replaced := "member replacement skipped"
		if r.Replaced {
			replaced = fmt.Sprintf("group member 0 rolled (mint %s)", r.MintStrategy)
		}
		fmt.Fprintf(&sb, "rollout: both migrations staged mid-run (train-on-target -> health-gate -> flip-route -> drain-source); %s\n", replaced)
	}
	if r.SnapshotMint > 0 || r.ReplayMint > 0 {
		fmt.Fprintf(&sb, "mint audit: snapshot transfer %s vs history replay %s (%.1fx), banks bit-identical: %v\n",
			r.SnapshotMint, r.ReplayMint, r.MintSpeedup, r.MintBitIdentical)
	}
	if r.DependentProbes > 0 {
		fmt.Fprintf(&sb, "invalidation audit: %d dependent verdicts dropped exactly once (%d invalidations), %d bystander verdicts survived\n",
			r.DependentProbes, r.Invalidations, r.IndependentProbes)
	}
	if r.Metrics != nil {
		fmt.Fprintf(&sb, "metrics: %s\n", r.Metrics.JSON())
	}
	return sb.String()
}
