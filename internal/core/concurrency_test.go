package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/fingerprint"
)

// batchBank builds a bank with enough types that discrimination runs,
// plus a probe set spanning every type and an out-of-distribution
// fingerprint.
func batchBank(t *testing.T) (*Bank, []*fingerprint.Fingerprint) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	train := map[string][]*fingerprint.Fingerprint{
		"camA":  synthType(100, 15, rng),
		"plugB": synthType(200, 15, rng),
		"hubC":  synthType(300, 15, rng),
		"twin1": synthType(500, 15, rng),
		"twin2": synthType(500, 15, rng),
	}
	// A permissive accept threshold makes multi-accepts (and hence the
	// discrimination stage) common, which the equivalence tests need.
	cfg := smallConfig()
	cfg.AcceptThreshold = 0.3
	b, err := Train(cfg, train)
	if err != nil {
		t.Fatal(err)
	}
	var probes []*fingerprint.Fingerprint
	for _, seed := range []int64{100, 200, 300, 500, 500, 999} {
		probes = append(probes, synthType(seed, 4, rng)...)
	}
	return b, probes
}

func TestIdentifyBatchMatchesSequential(t *testing.T) {
	b, probes := batchBank(t)
	want := make([]Result, len(probes))
	for i, f := range probes {
		want[i] = b.Identify(f)
	}
	sawDiscrimination := false
	for _, r := range want {
		if r.Stage == StageDiscrimination {
			sawDiscrimination = true
		}
	}
	if !sawDiscrimination {
		t.Fatal("probe set never triggered discrimination; equivalence test is vacuous")
	}
	for _, workers := range []int{0, 1, 2, 3, 8} {
		got := b.IdentifyBatch(probes, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results for %d probes", workers, len(got), len(probes))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("workers=%d probe %d: batch %+v != sequential %+v", workers, i, got[i], want[i])
			}
		}
	}
}

func TestIdentifyBatchEmpty(t *testing.T) {
	b, _ := batchBank(t)
	if got := b.IdentifyBatch(nil, 4); len(got) != 0 {
		t.Errorf("empty batch returned %d results", len(got))
	}
}

func TestIdentifyDeterministicAcrossCalls(t *testing.T) {
	// Reference sampling must be a pure function of (bank, fingerprint):
	// repeated identifications of the same fingerprint, interleaved with
	// identifications of others, return identical scores.
	b, probes := batchBank(t)
	first := b.Identify(probes[0])
	for _, f := range probes[1:] {
		b.Identify(f)
	}
	again := b.Identify(probes[0])
	if !reflect.DeepEqual(first, again) {
		t.Errorf("re-identification diverged: %+v vs %+v", first, again)
	}
}

// TestEnrollRacesIdentify drives Identify, IdentifyBatch, Classify and
// Discriminate from reader goroutines while Enroll grows the bank, under
// the race detector. Readers observe the bank before or after each
// enrolment but never mid-way.
func TestEnrollRacesIdentify(t *testing.T) {
	b, probes := batchBank(t)
	rng := rand.New(rand.NewSource(31))
	newTypes := make(map[string][]*fingerprint.Fingerprint)
	for i := 0; i < 4; i++ {
		newTypes[fmt.Sprintf("late%d", i)] = synthType(int64(700+i), 10, rng)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch (i + r) % 4 {
				case 0:
					res := b.Identify(probes[i%len(probes)])
					if res.Known && res.Type == "" {
						t.Error("known result with empty type")
					}
				case 1:
					got := b.IdentifyBatch(probes, 2)
					if len(got) != len(probes) {
						t.Errorf("batch returned %d results", len(got))
					}
				case 2:
					b.Classify(probes[i%len(probes)].Fixed())
				case 3:
					if n := b.Len(); n < 5 || n > 9 {
						t.Errorf("bank size %d outside [5,9]", n)
					}
				}
			}
		}(r)
	}

	for name, prints := range newTypes {
		if err := b.Enroll(name, prints); err != nil {
			t.Errorf("Enroll(%s): %v", name, err)
		}
	}
	close(stop)
	wg.Wait()

	if b.Len() != 9 {
		t.Errorf("final bank size %d, want 9", b.Len())
	}
}

// TestEnrollRacesIdentifyBatchHeavy holds long batches open while
// enrolments happen, exercising writer starvation/handoff paths.
func TestEnrollRacesIdentifyBatchHeavy(t *testing.T) {
	b, probes := batchBank(t)
	rng := rand.New(rand.NewSource(37))

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			b.IdentifyBatch(probes, 0)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := b.Enroll(fmt.Sprintf("heavy%d", i), synthType(int64(800+i), 8, rng)); err != nil {
				t.Errorf("Enroll: %v", err)
			}
		}
	}()
	wg.Wait()
	if b.Len() != 8 {
		t.Errorf("final bank size %d, want 8", b.Len())
	}
}
