package ml

import "testing"

// TestSampleMatrixShape covers the dense-matrix surface directly: shape
// accessors, the SetRow zero-pad branch, and mirror invalidation across
// Reset (the contract the quantized classify pass and the shard scatter
// depend on).
func TestSampleMatrixShape(t *testing.T) {
	var m SampleMatrix
	m.Reset(3, 4)
	if m.Rows() != 3 || m.Dim() != 4 {
		t.Fatalf("shape = %dx%d, want 3x4", m.Rows(), m.Dim())
	}
	m.SetRow(0, []float64{1, 2}) // shorter than dim: must zero-pad
	m.SetRow(1, []float64{5, 6, 7, 8})
	m.SetRow(2, []float64{9, 10, 11, 12})
	if got := m.Row(0); got[0] != 1 || got[1] != 2 || got[2] != 0 || got[3] != 0 {
		t.Fatalf("padded row = %v, want [1 2 0 0]", got)
	}

	// The eager mirror must equal the per-element float32 conversion.
	m.FillMirror()
	m32 := m.mirror()
	if len(m32) != 12 {
		t.Fatalf("mirror length = %d, want 12", len(m32))
	}
	for i, v := range m.data {
		if m32[i] != float32(v) {
			t.Fatalf("mirror[%d] = %v, want %v", i, m32[i], float32(v))
		}
	}

	// Reset reuses backing arrays and invalidates the mirror: a stale
	// mirror surviving a shrink would feed the next classify old rows.
	m.Reset(1, 4)
	m.SetRow(0, []float64{42, 43, 44, 45})
	m32 = m.mirror()
	if len(m32) != 4 || m32[0] != 42 || m32[3] != 45 {
		t.Fatalf("post-Reset mirror = %v, want [42 43 44 45]", m32)
	}
}

// TestForestSetBytesQuantized pins the footprint accounting both ways:
// the quantized arena stores float32 thresholds, so at equal tree
// structure it must report strictly fewer bytes than the float64 form.
func TestForestSetBytesQuantized(t *testing.T) {
	plain := NewForestSet(FlatConfig{})
	quant := NewForestSet(FlatConfig{Quantize: true})
	for _, f := range raggedForests(t, FlatConfig{}) {
		if err := plain.Append(f); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range raggedForests(t, FlatConfig{Quantize: true}) {
		if err := quant.Append(f); err != nil {
			t.Fatal(err)
		}
	}
	pb, qb := plain.Bytes(), quant.Bytes()
	if pb <= 0 || qb <= 0 {
		t.Fatalf("Bytes: plain %d, quantized %d, want both positive", pb, qb)
	}
	if qb >= pb {
		t.Fatalf("quantized arena %d B not smaller than float64 arena %d B", qb, pb)
	}
}
