package packet

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Well-known ports used for application-protocol classification. The
// fingerprinting features never inspect payload semantics; ports (plus the
// BOOTP/DHCP distinction below) are what Table I's application-layer
// booleans key on.
const (
	PortHTTP     uint16 = 80
	PortHTTPAlt  uint16 = 8080
	PortHTTPS    uint16 = 443
	PortHTTPSAlt uint16 = 8443
	PortDNS      uint16 = 53
	PortMDNS     uint16 = 5353
	PortNTP      uint16 = 123
	PortSSDP     uint16 = 1900
	PortBOOTPSrv uint16 = 67
	PortBOOTPCli uint16 = 68
)

// dhcpMagicCookie distinguishes DHCP messages from plain BOOTP.
var dhcpMagicCookie = [4]byte{99, 130, 83, 99}

// AppProtocols reports the Table-I application-layer booleans for the
// packet: HTTP, HTTPS, DHCP, BOOTP, SSDP, DNS, MDNS and NTP, in that
// order. Classification is purely port-based except for the DHCP/BOOTP
// split, which additionally checks the BOOTP magic cookie (a fixed header
// field, not payload content).
func (p *Packet) AppProtocols() (http, https, dhcp, bootp, ssdp, dns, mdns, ntp bool) {
	src, okS := p.SrcPort()
	dst, okD := p.DstPort()
	if !okS || !okD {
		return
	}
	either := func(port uint16) bool { return src == port || dst == port }

	if p.TCP != nil {
		http = either(PortHTTP) || either(PortHTTPAlt)
		https = either(PortHTTPS) || either(PortHTTPSAlt)
	}
	if p.UDP != nil {
		if either(PortBOOTPSrv) || either(PortBOOTPCli) {
			bootp = true
			dhcp = isDHCP(p.Payload)
		}
		ssdp = either(PortSSDP)
		dns = either(PortDNS)
		mdns = either(PortMDNS)
		ntp = either(PortNTP)
	}
	return
}

// isDHCP reports whether a BOOTP payload carries the DHCP magic cookie.
func isDHCP(payload []byte) bool {
	const cookieOff = 236
	if len(payload) < cookieOff+4 {
		return false
	}
	return [4]byte(payload[cookieOff:cookieOff+4]) == dhcpMagicCookie
}

// PortClass is the network port class of Table I: 0 = no port,
// 1 = well-known [0,1023], 2 = registered [1024,49151],
// 3 = dynamic [49152,65535].
func PortClass(port uint16, present bool) int {
	switch {
	case !present:
		return 0
	case port <= 1023:
		return 1
	case port <= 49151:
		return 2
	default:
		return 3
	}
}

// ---------------------------------------------------------------------------
// DHCP / BOOTP

// DHCP message types (option 53).
const (
	DHCPDiscover uint8 = 1
	DHCPOffer    uint8 = 2
	DHCPRequest  uint8 = 3
	DHCPAck      uint8 = 5
	DHCPInform   uint8 = 8
)

// DHCPOption is a single DHCP option TLV.
type DHCPOption struct {
	Code byte
	Data []byte
}

// DHCP option codes used by device setup flows.
const (
	DHCPOptRequestedIP   byte = 50
	DHCPOptMessageType   byte = 53
	DHCPOptServerID      byte = 54
	DHCPOptParamRequest  byte = 55
	DHCPOptClientID      byte = 61
	DHCPOptHostname      byte = 12
	DHCPOptVendorClassID byte = 60
	DHCPOptEnd           byte = 255
)

// BuildDHCP builds a BOOTP/DHCP payload. op is 1 for BOOTREQUEST, 2 for
// BOOTREPLY. The chaddr is taken from mac; yiaddr/ciaddr may be zero.
func BuildDHCP(op byte, xid uint32, mac MAC, ciaddr, yiaddr IP4, msgType uint8, extra ...DHCPOption) []byte {
	b := make([]byte, 240)
	b[0] = op
	b[1] = 1 // htype: Ethernet
	b[2] = 6 // hlen
	binary.BigEndian.PutUint32(b[4:], xid)
	copy(b[12:16], ciaddr[:])
	copy(b[16:20], yiaddr[:])
	copy(b[28:34], mac[:])
	copy(b[236:240], dhcpMagicCookie[:])
	b = append(b, DHCPOptMessageType, 1, msgType)
	for _, opt := range extra {
		b = append(b, opt.Code, byte(len(opt.Data)))
		b = append(b, opt.Data...)
	}
	return append(b, DHCPOptEnd)
}

// BuildBOOTP builds a plain BOOTP payload (no DHCP magic cookie), as some
// very old device stacks emit.
func BuildBOOTP(op byte, xid uint32, mac MAC) []byte {
	b := make([]byte, 300)
	b[0] = op
	b[1] = 1
	b[2] = 6
	binary.BigEndian.PutUint32(b[4:], xid)
	copy(b[28:34], mac[:])
	return b
}

// ---------------------------------------------------------------------------
// DNS / mDNS

// DNS record types used in queries.
const (
	DNSTypeA    uint16 = 1
	DNSTypePTR  uint16 = 12
	DNSTypeTXT  uint16 = 16
	DNSTypeAAAA uint16 = 28
	DNSTypeSRV  uint16 = 33
	DNSTypeANY  uint16 = 255
)

// BuildDNSQuery builds a single-question DNS query payload for the given
// fully-qualified name and record type. recursionDesired is set for
// unicast DNS and cleared for mDNS.
func BuildDNSQuery(id uint16, name string, qtype uint16, recursionDesired bool) []byte {
	b := make([]byte, 12, 12+len(name)+6)
	binary.BigEndian.PutUint16(b[0:], id)
	if recursionDesired {
		b[2] = 0x01
	}
	binary.BigEndian.PutUint16(b[4:], 1) // QDCOUNT
	b = appendDNSName(b, name)
	b = be16(b, qtype)
	b = be16(b, 1) // class IN
	return b
}

// BuildDNSResponse builds a minimal single-answer DNS response carrying an
// A record.
func BuildDNSResponse(id uint16, name string, addr IP4, ttl uint32) []byte {
	b := make([]byte, 12, 12+2*(len(name)+6)+16)
	binary.BigEndian.PutUint16(b[0:], id)
	b[2] = 0x81                          // response, RD
	b[3] = 0x80                          // RA
	binary.BigEndian.PutUint16(b[4:], 1) // QDCOUNT
	binary.BigEndian.PutUint16(b[6:], 1) // ANCOUNT
	b = appendDNSName(b, name)
	b = be16(b, DNSTypeA)
	b = be16(b, 1)
	b = appendDNSName(b, name)
	b = be16(b, DNSTypeA)
	b = be16(b, 1)
	b = append(b, byte(ttl>>24), byte(ttl>>16), byte(ttl>>8), byte(ttl))
	b = be16(b, 4)
	return append(b, addr[:]...)
}

// BuildMDNSAnnounce builds an mDNS announcement payload advertising the
// given service instance via a PTR record, as devices do when they join
// the network (e.g. _hue._tcp.local, _googlecast._tcp.local).
func BuildMDNSAnnounce(service, instance string) []byte {
	b := make([]byte, 12, 64)
	b[2] = 0x84                          // authoritative response
	binary.BigEndian.PutUint16(b[6:], 1) // ANCOUNT
	b = appendDNSName(b, service)
	b = be16(b, DNSTypePTR)
	b = be16(b, 0x8001)             // class IN, cache-flush
	b = append(b, 0, 0, 0x11, 0x94) // TTL 4500
	target := instance + "." + service
	b = be16(b, uint16(len(target)+2))
	return appendDNSName(b, target)
}

func appendDNSName(b []byte, name string) []byte {
	for _, label := range strings.Split(name, ".") {
		if label == "" {
			continue
		}
		b = append(b, byte(len(label)))
		b = append(b, label...)
	}
	return append(b, 0)
}

// ---------------------------------------------------------------------------
// SSDP

// BuildSSDPMSearch builds an SSDP M-SEARCH discovery request payload as
// UPnP devices and controller apps multicast to 239.255.255.250:1900.
func BuildSSDPMSearch(searchTarget string, mx int) []byte {
	return []byte(fmt.Sprintf(
		"M-SEARCH * HTTP/1.1\r\nHOST: 239.255.255.250:1900\r\nMAN: \"ssdp:discover\"\r\nMX: %d\r\nST: %s\r\n\r\n",
		mx, searchTarget))
}

// BuildSSDPNotify builds an SSDP NOTIFY ssdp:alive announcement payload.
func BuildSSDPNotify(location, nt, usn string) []byte {
	return []byte(fmt.Sprintf(
		"NOTIFY * HTTP/1.1\r\nHOST: 239.255.255.250:1900\r\nCACHE-CONTROL: max-age=1800\r\nLOCATION: %s\r\nNT: %s\r\nNTS: ssdp:alive\r\nUSN: %s\r\n\r\n",
		location, nt, usn))
}

// ---------------------------------------------------------------------------
// NTP

// BuildNTPRequest builds a 48-byte NTPv4 client request payload.
func BuildNTPRequest(txTimestamp uint64) []byte {
	b := make([]byte, 48)
	b[0] = 0x23 // LI=0, VN=4, Mode=3 (client)
	binary.BigEndian.PutUint64(b[40:], txTimestamp)
	return b
}

// ---------------------------------------------------------------------------
// HTTP / TLS

// BuildHTTPRequest builds an HTTP/1.1 request payload with the headers
// typical of IoT device firmware (short header set, no cookies).
func BuildHTTPRequest(method, host, path, userAgent string, bodyLen int) []byte {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s %s HTTP/1.1\r\nHost: %s\r\nUser-Agent: %s\r\nAccept: */*\r\n", method, path, host, userAgent)
	if bodyLen > 0 {
		fmt.Fprintf(&sb, "Content-Type: application/json\r\nContent-Length: %d\r\n", bodyLen)
	}
	sb.WriteString("Connection: close\r\n\r\n")
	if bodyLen > 0 {
		sb.WriteString(strings.Repeat("x", bodyLen))
	}
	return []byte(sb.String())
}

// BuildTLSClientHello builds a TLS 1.2 ClientHello record with an SNI
// extension for serverName. Only the framing matters to the fingerprinter
// (packet size and raw-data presence); the cipher list is a fixed
// plausible set.
func BuildTLSClientHello(serverName string, sessionTicketLen int) []byte {
	var hello []byte
	hello = append(hello, 0x03, 0x03)          // client_version TLS 1.2
	hello = append(hello, make([]byte, 32)...) // random
	hello = append(hello, 0)                   // session_id length
	ciphers := []uint16{0xc02f, 0xc030, 0xc02b, 0xc02c, 0x009e, 0x0033, 0x0039, 0x002f, 0x0035}
	hello = be16(hello, uint16(2*len(ciphers)))
	for _, c := range ciphers {
		hello = be16(hello, c)
	}
	hello = append(hello, 1, 0) // compression: null

	var ext []byte
	sni := make([]byte, 0, len(serverName)+9)
	sni = be16(sni, uint16(len(serverName)+5)) // server_name_list length
	sni = append(sni, 0)                       // host_name
	sni = be16(sni, uint16(len(serverName)))
	sni = append(sni, serverName...)
	ext = be16(ext, 0x0000) // server_name
	ext = be16(ext, uint16(len(sni)))
	ext = append(ext, sni...)
	if sessionTicketLen > 0 {
		ext = be16(ext, 0x0023) // session_ticket
		ext = be16(ext, uint16(sessionTicketLen))
		ext = append(ext, make([]byte, sessionTicketLen)...)
	}
	hello = be16(hello, uint16(len(ext)))
	hello = append(hello, ext...)

	hs := []byte{0x01, byte(len(hello) >> 16), byte(len(hello) >> 8), byte(len(hello))}
	hs = append(hs, hello...)
	rec := []byte{0x16, 0x03, 0x03} // handshake, TLS 1.2
	rec = be16(rec, uint16(len(hs)))
	return append(rec, hs...)
}

// ---------------------------------------------------------------------------
// IGMP / MLD / NDP / EAPOL bodies

// BuildIGMPv2Report builds an IGMPv2 membership report for the group, the
// payload devices emit (with an IP Router Alert option) when they join the
// SSDP or mDNS multicast groups.
func BuildIGMPv2Report(group IP4) []byte {
	b := make([]byte, 8)
	b[0] = 0x16 // v2 membership report
	copy(b[4:], group[:])
	binary.BigEndian.PutUint16(b[2:], Checksum(b))
	return b
}

// BuildMLDv2Report builds an MLDv2 listener report body (ICMPv6 type 143)
// with one "change to exclude" record per group.
func BuildMLDv2Report(groups ...IP6) []byte {
	b := make([]byte, 2) // reserved
	b = be16(b, uint16(len(groups)))
	for _, g := range groups {
		b = append(b, 4, 0) // CHANGE_TO_EXCLUDE_MODE, aux len 0
		b = be16(b, 0)      // no sources
		b = append(b, g[:]...)
	}
	return b
}

// BuildNeighborSolicit builds an ICMPv6 neighbor solicitation body for the
// target address, with the source link-layer address option when src is
// not the zero MAC (duplicate address detection omits it).
func BuildNeighborSolicit(target IP6, src MAC) []byte {
	b := make([]byte, 4, 28)
	b = append(b, target[:]...)
	if src != ZeroMAC {
		b = append(b, 1, 1) // source link-layer address option
		b = append(b, src[:]...)
	}
	return b
}

// BuildEAPOLKey builds an EAPOL-Key body resembling one message of the
// WPA2 four-way handshake. keyDataLen controls the trailing key-data
// field, which differs between handshake messages.
func BuildEAPOLKey(msg int, keyDataLen int) []byte {
	b := make([]byte, 95+keyDataLen)
	b[0] = 2 // descriptor type: RSN
	var info uint16
	switch msg {
	case 1:
		info = 0x008a
	case 2:
		info = 0x010a
	case 3:
		info = 0x13ca
	default:
		info = 0x030a
	}
	binary.BigEndian.PutUint16(b[1:], info)
	binary.BigEndian.PutUint16(b[3:], 16) // key length
	b[12] = byte(msg)                     // replay counter (low byte)
	binary.BigEndian.PutUint16(b[93:], uint16(keyDataLen))
	return b
}
