// Newdevice: what happens when a device-type the IoT Security Service
// has never seen joins the network — every classifier rejects its
// fingerprint, the device is reported as a new type, and the gateway
// confines it with strict isolation (no Internet, untrusted overlay
// only). Enrolling the new type later requires training one classifier,
// leaving the existing bank untouched (§IV-B1).
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/fingerprint"
	"repro/internal/gateway"
	"repro/internal/iotssp"
	"repro/internal/ml"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/vulndb"
)

func main() {
	log.SetFlags(0)
	env := devices.DefaultEnv()

	// Train the service on 26 of the 27 types, withholding HomeMaticPlug:
	// from the service's point of view, that type does not exist yet.
	// (A type with close same-vendor siblings — say one WeMo of three —
	// would instead be absorbed by its siblings' classifiers, which is
	// the confusion-group behaviour of Table III, not an error.)
	const newcomer = "HomeMaticPlug"
	fmt.Printf("training the IoTSSP on 26 device-types (withholding %s)…\n", newcomer)
	full, err := devices.GenerateDataset(env, 1, 10)
	if err != nil {
		log.Fatal(err)
	}
	train := make(map[string][]*fingerprint.Fingerprint, 26)
	for name, prints := range full {
		if name != newcomer {
			train[name] = prints
		}
	}
	bank, err := core.Train(core.BankConfig{Forest: ml.ForestConfig{Trees: 50}, Seed: 7}, train)
	if err != nil {
		log.Fatal(err)
	}
	svc := iotssp.NewService(bank, iotssp.ServiceConfig{DB: vulndb.Seeded()})

	// Gateway + medium.
	gw := gateway.New(gateway.GatewayConfig{
		MAC:       packet.MustParseMAC("02:53:47:57:00:01"),
		IP:        packet.MustParseIP4("192.168.1.1"),
		LocalNet:  packet.MustParseIP4("192.168.1.0"),
		Filtering: true,
	}, gateway.LocalService{Svc: svc})
	n := netsim.New(5, time.Date(2016, 3, 1, 10, 0, 0, 0, time.UTC))
	n.SetBridge(gw.Bridge())

	// The unknown device joins.
	profile, err := devices.Lookup(newcomer)
	if err != nil {
		log.Fatal(err)
	}
	dev, err := n.AddHost(newcomer, profile.MAC, profile.IP, netsim.WiFiLink(6*time.Millisecond, 0.1))
	if err != nil {
		log.Fatal(err)
	}
	trace := profile.Generate(env, 999, 0)
	for _, pkt := range trace.Packets {
		pkt := pkt
		n.Schedule(pkt.Timestamp, func() { dev.Send(pkt) })
	}
	fmt.Printf("%s joins and performs its setup (%d packets)…\n", newcomer, len(trace.Packets))
	n.RunAll()
	gw.Tick(n.Now().Add(time.Minute))
	gw.Drain() // wait for the async identification verdict

	ev := gw.Events[0]
	fmt.Printf("\n[gateway] verdict for %s: known=%v level=%s\n", ev.MAC, ev.Known, ev.Level)
	if ev.Known {
		fmt.Println("unexpected: the withheld type was identified — classifier bank too permissive")
	} else {
		fmt.Println("as designed: rejected by all 26 classifiers -> new device-type -> strict isolation")
	}

	// The strictly isolated device cannot reach the Internet…
	remote, err := n.AddHost("remote", packet.MustParseMAC("02:0b:00:00:00:01"),
		packet.MustParseIP4("52.1.2.3"), netsim.WANLink(5*time.Millisecond, 0.1))
	if err != nil {
		log.Fatal(err)
	}
	gw.Ignore(remote.MAC)
	p := netsim.NewPinger(dev, remote, 3)
	p.Run(3, 50*time.Millisecond, 32)
	n.RunAll()
	fmt.Printf("\n%s -> Internet: %d/3 pings answered (strict isolation blocks them)\n", newcomer, len(p.Results))

	// …until the operator enrolls the new type: one classifier is
	// trained; the other 26 are untouched.
	fmt.Printf("\n[iotssp] enrolling %s with %d fingerprints (no relearning of the existing bank)…\n",
		newcomer, len(full[newcomer]))
	if err := bank.Enroll(newcomer, full[newcomer]); err != nil {
		log.Fatal(err)
	}
	res := bank.Identify(trace.Fingerprint())
	fmt.Printf("[iotssp] re-identification after enrolment: known=%v type=%s (stage %s)\n",
		res.Known, res.Type, res.Stage)
}
