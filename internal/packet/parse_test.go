package packet

import (
	"testing"
	"testing/quick"
)

func TestParseDHCPRoundTrip(t *testing.T) {
	payload := BuildDHCP(1, 0xcafebabe, testMAC, IP4Zero, IP4Zero, DHCPRequest,
		DHCPOption{Code: DHCPOptRequestedIP, Data: deviceIP[:]},
		DHCPOption{Code: DHCPOptHostname, Data: []byte("smartplug")},
	)
	info, err := ParseDHCP(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !info.IsDHCP {
		t.Error("DHCP payload not recognized as DHCP")
	}
	if info.Op != 1 || info.XID != 0xcafebabe {
		t.Errorf("header = %+v", info)
	}
	if info.ClientMAC != testMAC {
		t.Errorf("ClientMAC = %v", info.ClientMAC)
	}
	if info.MessageType != DHCPRequest {
		t.Errorf("MessageType = %d, want request", info.MessageType)
	}
	if info.Hostname != "smartplug" {
		t.Errorf("Hostname = %q", info.Hostname)
	}
	if info.RequestedIP != deviceIP {
		t.Errorf("RequestedIP = %v", info.RequestedIP)
	}
}

func TestParseDHCPPlainBOOTP(t *testing.T) {
	info, err := ParseDHCP(BuildBOOTP(1, 7, testMAC))
	if err != nil {
		t.Fatal(err)
	}
	if info.IsDHCP {
		t.Error("plain BOOTP recognized as DHCP")
	}
	if info.ClientMAC != testMAC {
		t.Errorf("ClientMAC = %v", info.ClientMAC)
	}
}

func TestParseDHCPTruncated(t *testing.T) {
	if _, err := ParseDHCP(make([]byte, 100)); err == nil {
		t.Error("truncated DHCP accepted")
	}
}

func TestParseDNSRoundTrip(t *testing.T) {
	payload := BuildDNSQuery(77, "cloud.vendor.example.com", DNSTypeAAAA, true)
	info, err := ParseDNS(payload)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != 77 || info.Response {
		t.Errorf("header = %+v", info)
	}
	if len(info.Questions) != 1 {
		t.Fatalf("questions = %+v", info.Questions)
	}
	q := info.Questions[0]
	if q.Name != "cloud.vendor.example.com" || q.Type != DNSTypeAAAA {
		t.Errorf("question = %+v", q)
	}

	resp, err := ParseDNS(BuildDNSResponse(77, "cloud.vendor.example.com", deviceIP, 300))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Response || resp.AnswerCount != 1 {
		t.Errorf("response = %+v", resp)
	}
}

func TestParseDNSNameProperty(t *testing.T) {
	// Property: any name built from safe labels round-trips.
	f := func(raw []byte) bool {
		label := "a"
		for _, c := range raw {
			if len(label) >= 20 {
				break
			}
			label += string(rune('a' + c%26))
		}
		name := label + ".example.com"
		payload := BuildDNSQuery(1, name, DNSTypeA, false)
		info, err := ParseDNS(payload)
		return err == nil && len(info.Questions) == 1 && info.Questions[0].Name == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestParseSSDP(t *testing.T) {
	info, err := ParseSSDP(BuildSSDPMSearch("ssdp:all", 2))
	if err != nil {
		t.Fatal(err)
	}
	if info.Method != "M-SEARCH" {
		t.Errorf("Method = %q", info.Method)
	}
	if info.Headers["ST"] != "ssdp:all" {
		t.Errorf("ST = %q", info.Headers["ST"])
	}

	notify, err := ParseSSDP(BuildSSDPNotify("http://192.168.1.5/d.xml", "upnp:rootdevice", "uuid:x"))
	if err != nil {
		t.Fatal(err)
	}
	if notify.Method != "NOTIFY" || notify.Headers["NT"] != "upnp:rootdevice" {
		t.Errorf("notify = %+v", notify)
	}

	if _, err := ParseSSDP([]byte("GARBAGE\r\n")); err == nil {
		t.Error("garbage SSDP accepted")
	}
}

func TestParseHTTPRequest(t *testing.T) {
	info, err := ParseHTTPRequest(BuildHTTPRequest("POST", "api.example.com", "/v1/register", "iot/1.0", 32))
	if err != nil {
		t.Fatal(err)
	}
	if info.Method != "POST" || info.Path != "/v1/register" || info.Host != "api.example.com" {
		t.Errorf("info = %+v", info)
	}
	if _, err := ParseHTTPRequest([]byte("not http")); err == nil {
		t.Error("garbage HTTP accepted")
	}
}

func TestParseTLSServerName(t *testing.T) {
	for _, ticket := range []int{0, 32} {
		hello := BuildTLSClientHello("cloud.vendor.example.com", ticket)
		name, err := ParseTLSServerName(hello)
		if err != nil {
			t.Fatalf("ticket=%d: %v", ticket, err)
		}
		if name != "cloud.vendor.example.com" {
			t.Errorf("ticket=%d: SNI = %q", ticket, name)
		}
	}
	if _, err := ParseTLSServerName([]byte{0x17, 0x03, 0x03, 0, 0}); err == nil {
		t.Error("non-handshake record accepted")
	}
}

func TestParseTLSServerNameProperty(t *testing.T) {
	f := func(raw []byte, ticket uint8) bool {
		host := "h"
		for _, c := range raw {
			if len(host) >= 60 {
				break
			}
			host += string(rune('a' + c%26))
		}
		name, err := ParseTLSServerName(BuildTLSClientHello(host, int(ticket)))
		return err == nil && name == host
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
