package pcap

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

// fuzzSeedCapture builds a small valid capture file in each timestamp
// resolution.
func fuzzSeedCapture(f *testing.F, nanos bool) []byte {
	f.Helper()
	var buf bytes.Buffer
	var opts []WriterOption
	if nanos {
		opts = append(opts, WithNanosecondResolution())
	}
	w, err := NewWriter(&buf, opts...)
	if err != nil {
		f.Fatal(err)
	}
	ts := time.Unix(1456826400, 123456789)
	for i := 0; i < 3; i++ {
		frame := bytes.Repeat([]byte{byte(i + 1)}, 24+i*40)
		if err := w.WritePacket(ts.Add(time.Duration(i)*time.Second), frame); err != nil {
			f.Fatal(err)
		}
	}
	return buf.Bytes()
}

// FuzzReaderNext feeds arbitrary bytes through the pcap reader and
// asserts the robustness contract: corrupt or hostile input (including
// record headers announcing multi-gigabyte lengths) yields an error,
// never a panic or an unbounded allocation, and the buffer-reusing
// NextBuf path sees exactly the same records as Next.
func FuzzReaderNext(f *testing.F) {
	for _, nanos := range []bool{false, true} {
		seed := fuzzSeedCapture(f, nanos)
		f.Add(seed)
		f.Add(seed[:len(seed)-7]) // truncated mid-record
		f.Add(seed[:24+3])        // truncated record header (global header is 24 bytes)
		huge := append([]byte(nil), seed...)
		// Claim a ~4 GiB record (incl_len at offset 8 of the first record
		// header): MaxRecordLen must reject it.
		huge[24+8], huge[24+9], huge[24+10], huge[24+11] = 0xff, 0xff, 0xff, 0xff
		f.Add(huge)
	}
	f.Add([]byte{})
	f.Add([]byte("not a pcap file at all, just text"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ra, errA := NewReader(bytes.NewReader(data))
		rb, errB := NewReader(bytes.NewReader(data))
		if (errA == nil) != (errB == nil) {
			t.Fatalf("NewReader nondeterministic: %v vs %v", errA, errB)
		}
		if errA != nil {
			return
		}
		var buf []byte
		for i := 0; ; i++ {
			recA, errA := ra.Next()
			recB, errB := rb.NextBuf(buf)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("record %d: Next err=%v, NextBuf err=%v", i, errA, errB)
			}
			if errA != nil {
				if errors.Is(errA, io.EOF) != errors.Is(errB, io.EOF) {
					t.Fatalf("record %d: EOF disagreement: %v vs %v", i, errA, errB)
				}
				return
			}
			if len(recA.Data) > MaxRecordLen {
				t.Fatalf("record %d: %d bytes exceeds MaxRecordLen", i, len(recA.Data))
			}
			if !recA.Timestamp.Equal(recB.Timestamp) || !bytes.Equal(recA.Data, recB.Data) {
				t.Fatalf("record %d: Next and NextBuf disagree", i)
			}
			buf = recB.Data
		}
	})
}
