package ml

import (
	"math/rand"
	"runtime"
	"testing"
)

// raggedForests trains a deliberately ragged bank of forests (tree
// counts straddling the treeBlockTrees grouping threshold) under one
// flat layout.
func raggedForests(t *testing.T, cfg FlatConfig) []*Forest {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	sizes := []int{3, 17, 1, 60, 131, 9}
	forests := make([]*Forest, 0, len(sizes))
	for i, trees := range sizes {
		ds := xorDataset(160, rng)
		if i%2 == 1 {
			ds = linearDataset(160, rng)
		}
		f, err := NewForest(ds, ForestConfig{Trees: trees, Seed: int64(100 + i), Flat: cfg})
		if err != nil {
			t.Fatalf("NewForest: %v", err)
		}
		forests = append(forests, f)
	}
	return forests
}

// probeMatrix fills a SampleMatrix with deterministic 2-feature probes
// spanning the datasets' domain and returns the per-row slices for the
// per-forest oracle.
func probeMatrix(m *SampleMatrix, rows int) [][]float64 {
	m.Reset(rows, 2)
	rng := rand.New(rand.NewSource(42))
	xs := make([][]float64, rows)
	for s := 0; s < rows; s++ {
		m.SetRow(s, []float64{rng.Float64() * 1.1, rng.Float64() * 1.1})
		xs[s] = append([]float64(nil), m.Row(s)...)
	}
	return xs
}

// TestForestSetMatchesPerForest is the fused engine's bit-equality
// property test: across layout precision, leaf caps, ragged tree counts,
// batch sizes straddling the sample-block size and every worker count up
// to twice GOMAXPROCS, ForestSet.Votes must equal each forest's own
// sequential flat-layout vote count on every sample.
func TestForestSetMatchesPerForest(t *testing.T) {
	layouts := []FlatConfig{
		{},
		{Quantize: true},
		{MaxLeaves: 8},
		{Quantize: true, MaxLeaves: 8},
	}
	for _, cfg := range layouts {
		forests := raggedForests(t, cfg)
		fs := NewForestSet(cfg)
		for _, f := range forests {
			if err := fs.Append(f); err != nil {
				t.Fatalf("Append(quantize=%v): %v", cfg.Quantize, err)
			}
		}
		if fs.Forests() != len(forests) {
			t.Fatalf("Forests() = %d, want %d", fs.Forests(), len(forests))
		}
		for i, f := range forests {
			if fs.TreesOf(i) != f.Trees() {
				t.Fatalf("TreesOf(%d) = %d, want %d", i, fs.TreesOf(i), f.Trees())
			}
		}
		for _, rows := range []int{1, 5, sampleBlock, sampleBlock + 13} {
			var m SampleMatrix
			xs := probeMatrix(&m, rows)
			want := make([]int32, rows*len(forests))
			for s, x := range xs {
				for fi, f := range forests {
					want[s*len(forests)+fi] = int32(f.flat.votes(x))
				}
			}
			votes := make([]int32, len(want))
			for workers := 1; workers <= 2*runtime.GOMAXPROCS(0); workers++ {
				for i := range votes {
					votes[i] = -1 // Votes must overwrite every cell.
				}
				fs.Votes(&m, votes, workers)
				for i := range want {
					if votes[i] != want[i] {
						t.Fatalf("quantize=%v maxLeaves=%d rows=%d workers=%d: votes[%d] = %d, oracle %d",
							cfg.Quantize, cfg.MaxLeaves, rows, workers, i, votes[i], want[i])
					}
				}
			}
		}
	}
}

// TestForestSetAppendMatchesRebuild holds the incremental enrolment
// path to the rebuild path: appending forests one at a time (with
// classify passes interleaved, as live enrolment does) yields the same
// vote matrix as a Reset + full re-append.
func TestForestSetAppendMatchesRebuild(t *testing.T) {
	cfg := FlatConfig{Quantize: true}
	forests := raggedForests(t, cfg)
	var m SampleMatrix
	probeMatrix(&m, 33)

	incr := NewForestSet(cfg)
	scratch := make([]int32, m.Rows()*len(forests))
	for _, f := range forests {
		if err := incr.Append(f); err != nil {
			t.Fatalf("Append: %v", err)
		}
		incr.Votes(&m, scratch[:m.Rows()*incr.Forests()], 3)
	}

	rebuilt := NewForestSet(cfg)
	rebuilt.Reset() // Reset on empty is a no-op; exercise it anyway.
	for _, f := range forests {
		if err := rebuilt.Append(f); err != nil {
			t.Fatalf("Append after Reset: %v", err)
		}
	}

	a := make([]int32, m.Rows()*incr.Forests())
	b := make([]int32, m.Rows()*rebuilt.Forests())
	incr.Votes(&m, a, 0)
	rebuilt.Votes(&m, b, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("incremental vs rebuilt diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	if incr.Bytes() != rebuilt.Bytes() {
		t.Fatalf("Bytes: incremental %d, rebuilt %d", incr.Bytes(), rebuilt.Bytes())
	}
}

// TestForestSetAppendLayoutMismatch rejects fusing a forest flattened
// under the other precision.
func TestForestSetAppendLayoutMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f, err := NewForest(linearDataset(80, rng), ForestConfig{Trees: 5, Seed: 2, Flat: FlatConfig{Quantize: true}})
	if err != nil {
		t.Fatalf("NewForest: %v", err)
	}
	if err := NewForestSet(FlatConfig{}).Append(f); err == nil {
		t.Fatal("appending a quantized forest to a float64 set succeeded")
	}
}

// TestForestSetVotesZeroAlloc pins the tentpole's allocation contract:
// after one warm-up pass (which sizes the float32 mirror and spins up
// the worker pool), a fused classify allocates nothing — sequential or
// fanned out.
func TestForestSetVotesZeroAlloc(t *testing.T) {
	for _, cfg := range []FlatConfig{{}, {Quantize: true}} {
		forests := raggedForests(t, cfg)
		fs := NewForestSet(cfg)
		for _, f := range forests {
			if err := fs.Append(f); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		var m SampleMatrix
		probeMatrix(&m, 70)
		votes := make([]int32, m.Rows()*fs.Forests())
		for _, workers := range []int{1, runtime.GOMAXPROCS(0) + 1} {
			fs.Votes(&m, votes, workers) // warm pool, job cache, mirror
			if n := testing.AllocsPerRun(20, func() { fs.Votes(&m, votes, workers) }); n != 0 {
				t.Errorf("quantize=%v workers=%d: %v allocs per Votes, want 0", cfg.Quantize, workers, n)
			}
		}
	}
}

// TestForestSetEmpty covers the degenerate shapes: an empty arena and a
// zero-row matrix both return without touching votes beyond the zeroed
// prefix.
func TestForestSetEmpty(t *testing.T) {
	fs := NewForestSet(FlatConfig{})
	var m SampleMatrix
	probeMatrix(&m, 4)
	fs.Votes(&m, nil, 8) // no forests: must not panic
	if fs.Forests() != 0 {
		t.Fatalf("Forests() = %d, want 0", fs.Forests())
	}

	rng := rand.New(rand.NewSource(6))
	f, err := NewForest(linearDataset(80, rng), ForestConfig{Trees: 5, Seed: 3})
	if err != nil {
		t.Fatalf("NewForest: %v", err)
	}
	if err := fs.Append(f); err != nil {
		t.Fatalf("Append: %v", err)
	}
	m.Reset(0, 2)
	fs.Votes(&m, nil, 8) // no rows: must not panic
}
