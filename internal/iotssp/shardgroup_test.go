package iotssp

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// startShardGroupHarness serves n identically trained copies of the
// fixture's shard 1 behind restartable replicas and a ShardGroup over
// them.
func startShardGroupHarness(t *testing.T, n int, cfg ShardGroupConfig) ([]*Replica, []*core.Bank, *ShardGroup) {
	t.Helper()
	replicas := make([]*Replica, n)
	banks := make([]*core.Bank, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		// Training is deterministic in (config, data): every copy is
		// bit-identical, which is the replication contract.
		banks[i] = freshShardedBank(t).Shard(1).(*core.Bank)
		replicas[i] = startShardReplica(t, banks[i])
		addrs[i] = replicas[i].Addr()
	}
	g := NewShardGroup(addrs, cfg)
	t.Cleanup(func() { g.Close() })
	return replicas, banks, g
}

func TestShardGroupMirrorsSingleReplica(t *testing.T) {
	fix := getShardFixture(t)
	local := fix.sharded.Shard(1).(*core.Bank)
	_, _, group := startShardGroupHarness(t, 2, ShardGroupConfig{Shard: RemoteShardConfig{Seed: 31}})

	if got, want := group.Types(), local.Types(); !reflect.DeepEqual(got, want) {
		t.Fatalf("group Types = %v, want %v", got, want)
	}
	if got, want := group.Version(), local.Version(); got != want {
		t.Fatalf("group Version = %d, want %d", got, want)
	}
	gotAccepts := group.ClassifyBatch(fix.probes, 0)
	wantAccepts := local.ClassifyBatch(fix.probes, 0)
	if !reflect.DeepEqual(gotAccepts, wantAccepts) {
		t.Fatalf("group ClassifyBatch = %v, want %v", gotAccepts, wantAccepts)
	}
	types := local.Types()
	for i, fp := range fix.probes {
		gotBest, gotScores := group.Discriminate(fp, types)
		wantBest, wantScores := local.Discriminate(fp, types)
		if gotBest != wantBest || !reflect.DeepEqual(gotScores, wantScores) {
			t.Fatalf("probe %d: group Discriminate = (%q, %v), want (%q, %v)",
				i, gotBest, gotScores, wantBest, wantScores)
		}
	}
	st := group.Counters()
	if st.Failures != 0 {
		t.Errorf("group failures = %d, want 0", st.Failures)
	}
	if group.Members() != 2 {
		t.Errorf("Members = %d, want 2", group.Members())
	}
	for i := range st.Members {
		if got := group.Member(i).Addr(); got != st.Members[i].Addr {
			t.Errorf("member %d addr %q != stats addr %q", i, got, st.Members[i].Addr)
		}
	}
	// Round-robin read routing: both members saw traffic.
	for i, m := range st.Members {
		if m.Requests == 0 {
			t.Errorf("member %d saw no traffic: %+v", i, m)
		}
		if !m.Healthy {
			t.Errorf("member %d unhealthy with no failure injected", i)
		}
	}
}

func TestShardGroupFailsOverOnMemberKill(t *testing.T) {
	fix := getShardFixture(t)
	local := fix.sharded.Shard(1).(*core.Bank)
	replicas, _, group := startShardGroupHarness(t, 2, ShardGroupConfig{
		Shard:        RemoteShardConfig{Seed: 37, RetryBackoff: 2 * time.Millisecond, MaxBackoff: 10 * time.Millisecond, Timeout: 5 * time.Second},
		ProbeBackoff: 20 * time.Millisecond,
	})
	want := local.ClassifyBatch(fix.probes, 0)
	if got := group.ClassifyBatch(fix.probes, 0); !reflect.DeepEqual(got, want) {
		t.Fatal("pre-kill classify mismatch")
	}

	// Kill member 0. Every subsequent operation must keep answering
	// correctly — failover, not a retry burst against the dead server.
	if err := replicas[0].Stop(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if got := group.ClassifyBatch(fix.probes, 0); !reflect.DeepEqual(got, want) {
			t.Fatalf("classify %d with member 0 down: mismatch", i)
		}
	}
	st := group.Counters()
	if st.Failures != 0 {
		t.Errorf("group-level failures = %d during single-member outage, want 0", st.Failures)
	}
	if st.Failovers == 0 && st.Members[0].Ejections == 0 {
		t.Errorf("outage left no failover/ejection trace: %+v", st)
	}
	if st.Members[0].Healthy {
		t.Errorf("dead member still admitted after %d operations: %+v", 7, st.Members[0])
	}

	// Revive member 0: the probing re-admission must bring it back.
	if err := replicas[0].Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		group.Types() // traffic doubles as the re-admission probe
		if group.Counters().Members[0].Healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("member 0 never re-admitted after revival: %+v", group.Counters())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := group.Counters(); st.Members[0].Readmissions == 0 {
		t.Errorf("re-admission not counted: %+v", st.Members[0])
	}
	if got := group.ClassifyBatch(fix.probes, 0); !reflect.DeepEqual(got, want) {
		t.Fatal("post-revival classify mismatch")
	}
}

func TestShardGroupEnrollFansOutWithVersionReconciliation(t *testing.T) {
	fix := getShardFixture(t)
	_, banks, group := startShardGroupHarness(t, 2, ShardGroupConfig{Shard: RemoteShardConfig{Seed: 41}})

	group.Types() // warm the version cache (Version is the max observed stamp)
	v0 := group.Version()
	if got := banks[0].Version(); v0 != got {
		t.Fatalf("warmed group version = %d, want the banks' %d", v0, got)
	}
	if err := group.Enroll(fix.spareName, fix.sparePrints); err != nil {
		t.Fatalf("group Enroll: %v", err)
	}
	// Every member trained the type, every member moved one version, and
	// the reconciled group version bumped exactly once — the verdict
	// cache above sees one invalidation, not one per replica.
	if got := group.Version(); got != v0+1 {
		t.Fatalf("group Version after fan-out enroll = %d, want %d (exactly one bump)", got, v0+1)
	}
	for i, bank := range banks {
		if got := bank.Version(); got != v0+1 {
			t.Errorf("member %d bank version = %d, want %d", i, got, v0+1)
		}
		types := bank.Types()
		if types[len(types)-1] != fix.spareName {
			t.Errorf("member %d missing the enrolled type: %v", i, types)
		}
	}
	types := group.Types()
	if types[len(types)-1] != fix.spareName {
		t.Errorf("group Types missing the enrolled type: %v", types)
	}

	// A duplicate fan-out enrolment reconciles against the members'
	// authoritative type lists and reports success (the type is there),
	// with no further version bump.
	if err := group.Enroll(fix.spareName, fix.sparePrints); err != nil {
		t.Fatalf("duplicate fan-out enroll did not reconcile: %v", err)
	}
	if got := group.Version(); got != v0+1 {
		t.Errorf("reconciled duplicate enroll bumped the version to %d", got)
	}
}

func TestShardGroupEnrollSurfacesMemberOutage(t *testing.T) {
	fix := getShardFixture(t)
	replicas, _, group := startShardGroupHarness(t, 2, ShardGroupConfig{
		Shard: RemoteShardConfig{Seed: 43, RetryBackoff: 2 * time.Millisecond, MaxBackoff: 10 * time.Millisecond},
	})
	if err := replicas[1].Stop(); err != nil {
		t.Fatal(err)
	}
	err := group.Enroll(fix.spareName, fix.sparePrints)
	if err == nil {
		t.Fatal("fan-out enroll with a dead member succeeded (replicas silently diverged)")
	}
	if !strings.Contains(err.Error(), "member") {
		t.Errorf("error does not name the member: %v", err)
	}
}

func TestShardGroupFailsOpenOnFullOutage(t *testing.T) {
	fix := getShardFixture(t)
	replicas, _, group := startShardGroupHarness(t, 2, ShardGroupConfig{
		Shard:        RemoteShardConfig{Seed: 47, RetryBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond, Timeout: 2 * time.Second},
		ProbeBackoff: 10 * time.Millisecond,
	})
	for _, r := range replicas {
		if err := r.Stop(); err != nil {
			t.Fatal(err)
		}
	}
	// Both members down: classify fails open to all-reject (the logical
	// bank degrades to "unknown device", it does not wedge).
	got := group.ClassifyBatch(fix.probes[:2], 0)
	if len(got) != 2 || got[0] != nil || got[1] != nil {
		t.Fatalf("full-outage classify = %v, want all-reject", got)
	}
	if st := group.Counters(); st.Failures == 0 {
		t.Errorf("full outage not counted as a group failure: %+v", st)
	}

	// Revive one member: the full-outage recovery probe must find it.
	if err := replicas[1].Start(); err != nil {
		t.Fatal(err)
	}
	want := fix.sharded.Shard(1).(*core.Bank).ClassifyBatch(fix.probes[:2], 0)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if got := group.ClassifyBatch(fix.probes[:2], 0); reflect.DeepEqual(got, want) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("group never recovered from full outage: %+v", group.Counters())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestShardedBankOverShardGroupBitEqual(t *testing.T) {
	fix := getShardFixture(t)
	served := freshShardedBank(t)
	_, _, group := startShardGroupHarness(t, 2, ShardGroupConfig{Shard: RemoteShardConfig{Seed: 53}})

	mixed, err := core.NewShardedBankFrom(fix.cfg, []core.Shard{served.Shard(0), group})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mixed.Types(), fix.sharded.Types(); !reflect.DeepEqual(got, want) {
		t.Fatalf("mixed bank type order %v, want %v", got, want)
	}
	wantRes := fix.sharded.IdentifyBatch(fix.probes, 0)
	gotRes := mixed.IdentifyBatch(fix.probes, 0)
	if !reflect.DeepEqual(gotRes, wantRes) {
		t.Fatalf("bank-over-group verdicts differ from all-local:\n got %+v\nwant %+v", gotRes, wantRes)
	}
}
