package dataplane

import (
	"context"
	"sort"

	"repro/internal/fingerprint"
	"repro/internal/iotssp"
)

// BatchIdentifier is the identification backend the pipeline completes
// captures into. It is structurally identical to gateway.BatchIdentifier,
// so gateway.LocalService (in-process service), gateway.Pool and
// gateway.FleetPool (wire clients) all satisfy it.
type BatchIdentifier interface {
	IdentifyBatch(ctx context.Context, macs []string, fps []*fingerprint.Fingerprint) ([]iotssp.Response, []error)
}

// Verdict pairs one completed capture with its identification outcome.
type Verdict struct {
	Capture  Capture
	Response iotssp.Response
	// Err is the per-capture identification error, nil on success.
	Err error
}

// DefaultIdentifyBatch is the capture batch size RunIdentify flushes at.
const DefaultIdentifyBatch = 32

// RunIdentify drives the pipeline over src and completes each setup
// capture into ident: captures are flushed in batches of batchSize
// (DefaultIdentifyBatch when <= 0) as they stream out of the workers,
// so identification overlaps decode instead of trailing it. The
// returned verdicts are in the pipeline's deterministic capture order.
// cfg.OnCapture must be unset — RunIdentify owns capture delivery.
func RunIdentify(ctx context.Context, cfg Config, src Source, ident BatchIdentifier, batchSize int) ([]Verdict, *Result, error) {
	if batchSize <= 0 {
		batchSize = DefaultIdentifyBatch
	}
	var (
		verdicts []Verdict
		pending  []Capture
		// Flush assembly buffers live across flushes: a long capture run
		// reuses one macs/fps pair for every batch instead of allocating a
		// fresh pair per flush.
		macs []string
		fps  []*fingerprint.Fingerprint
	)
	flush := func() {
		if len(pending) == 0 {
			return
		}
		macs, fps = macs[:0], fps[:0]
		for _, c := range pending {
			macs = append(macs, c.MAC.String())
			fps = append(fps, c.Fingerprint)
		}
		resps, errs := ident.IdentifyBatch(ctx, macs, fps)
		for i, c := range pending {
			v := Verdict{Capture: c}
			if i < len(resps) {
				v.Response = resps[i]
			}
			if i < len(errs) {
				v.Err = errs[i]
			}
			verdicts = append(verdicts, v)
		}
		pending = pending[:0]
	}

	cfg.OnCapture = func(c Capture) {
		pending = append(pending, c)
		if len(pending) >= batchSize {
			flush()
		}
	}
	res, err := Run(cfg, src)
	if err != nil {
		return nil, nil, err
	}
	flush()
	sort.Slice(verdicts, func(i, j int) bool { return verdicts[i].Capture.less(verdicts[j].Capture) })
	return verdicts, res, nil
}
