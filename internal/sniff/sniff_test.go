package sniff

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/devices"
	"repro/internal/fingerprint"
	"repro/internal/packet"
)

var t0 = time.Date(2016, 3, 1, 10, 0, 0, 0, time.UTC)

func fastConfig() fingerprint.SetupEndConfig {
	return fingerprint.SetupEndConfig{
		Window:       5 * time.Second,
		RateFraction: 0.2,
		IdleGap:      10 * time.Second,
		MinPackets:   4,
		MaxPackets:   1024,
	}
}

func TestMonitorSingleDevice(t *testing.T) {
	m := NewMonitor(fastConfig())
	var captures []Capture
	m.OnSetupComplete = func(c Capture) { captures = append(captures, c) }

	mac := packet.MustParseMAC("02:00:00:00:00:11")
	b := packet.NewBuilder(mac)
	ts := t0
	for i := 0; i < 12; i++ {
		m.Observe(b.ARPProbe(packet.MustParseIP4("192.168.1.5"), ts))
		ts = ts.Add(300 * time.Millisecond)
	}
	if len(captures) != 0 {
		t.Fatal("capture completed during active burst")
	}
	// Device goes quiet; Tick after the idle gap completes the capture.
	m.Tick(ts.Add(15 * time.Second))
	if len(captures) != 1 {
		t.Fatalf("got %d captures, want 1", len(captures))
	}
	if captures[0].MAC != mac {
		t.Errorf("capture MAC = %v", captures[0].MAC)
	}
	if len(captures[0].Packets) != 12 {
		t.Errorf("capture has %d packets, want 12", len(captures[0].Packets))
	}
	if !m.Seen(mac) {
		t.Error("Seen = false after completion")
	}
}

func TestMonitorIdleGapSplitsSetupFromStandby(t *testing.T) {
	m := NewMonitor(fastConfig())
	var captures []Capture
	m.OnSetupComplete = func(c Capture) { captures = append(captures, c) }

	mac := packet.MustParseMAC("02:00:00:00:00:12")
	b := packet.NewBuilder(mac)
	ts := t0
	for i := 0; i < 10; i++ {
		m.Observe(b.ARPProbe(packet.MustParseIP4("192.168.1.5"), ts))
		ts = ts.Add(200 * time.Millisecond)
	}
	// First standby packet arrives after a long silence: it must end the
	// capture and NOT be part of it.
	m.Observe(b.NTPRequestPkt(packet.MustParseMAC("02:00:00:00:00:01"), packet.MustParseIP4("192.168.1.1"), ts.Add(30*time.Second)))
	if len(captures) != 1 {
		t.Fatalf("got %d captures, want 1", len(captures))
	}
	if n := len(captures[0].Packets); n != 10 {
		t.Errorf("capture has %d packets, want 10 (standby packet excluded)", n)
	}
}

func TestMonitorMultipleDevicesInterleaved(t *testing.T) {
	m := NewMonitor(fastConfig())
	captures := make(map[packet.MAC]int)
	m.OnSetupComplete = func(c Capture) { captures[c.MAC] = len(c.Packets) }

	mac1 := packet.MustParseMAC("02:00:00:00:00:21")
	mac2 := packet.MustParseMAC("02:00:00:00:00:22")
	b1 := packet.NewBuilder(mac1)
	b2 := packet.NewBuilder(mac2)
	ts := t0
	for i := 0; i < 8; i++ {
		m.Observe(b1.ARPProbe(packet.MustParseIP4("192.168.1.5"), ts))
		m.Observe(b2.ARPProbe(packet.MustParseIP4("192.168.1.6"), ts.Add(100*time.Millisecond)))
		ts = ts.Add(400 * time.Millisecond)
	}
	if m.Active() != 2 {
		t.Errorf("Active = %d, want 2", m.Active())
	}
	m.Tick(ts.Add(time.Minute))
	if len(captures) != 2 {
		t.Fatalf("got %d captures, want 2", len(captures))
	}
	if captures[mac1] != 8 || captures[mac2] != 8 {
		t.Errorf("per-device packet counts = %v, want 8 each", captures)
	}
}

func TestMonitorIgnoresAndForget(t *testing.T) {
	m := NewMonitor(fastConfig())
	count := 0
	m.OnSetupComplete = func(Capture) { count++ }

	gw := packet.MustParseMAC("02:00:00:00:00:01")
	m.IgnoreMACs[gw] = true
	b := packet.NewBuilder(gw)
	for i := 0; i < 20; i++ {
		m.Observe(b.ARPProbe(packet.MustParseIP4("192.168.1.1"), t0.Add(time.Duration(i)*time.Second)))
	}
	m.Flush()
	if count != 0 {
		t.Error("ignored MAC produced a capture")
	}

	// A completed device is not re-captured until Forget.
	dev := packet.MustParseMAC("02:00:00:00:00:31")
	db := packet.NewBuilder(dev)
	ts := t0
	for i := 0; i < 6; i++ {
		m.Observe(db.ARPProbe(packet.MustParseIP4("192.168.1.9"), ts))
		ts = ts.Add(time.Second)
	}
	m.Flush()
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	for i := 0; i < 6; i++ {
		m.Observe(db.ARPProbe(packet.MustParseIP4("192.168.1.9"), ts))
		ts = ts.Add(time.Second)
	}
	m.Flush()
	if count != 1 {
		t.Error("completed device re-captured without Forget")
	}
	m.Forget(dev)
	for i := 0; i < 6; i++ {
		m.Observe(db.ARPProbe(packet.MustParseIP4("192.168.1.9"), ts))
		ts = ts.Add(time.Second)
	}
	m.Flush()
	if count != 2 {
		t.Error("Forget did not re-enable capture")
	}
}

func TestMonitorWithDeviceTraces(t *testing.T) {
	// A full simulated setup run must complete as one capture whose
	// fingerprint matches the trace's own.
	m := NewMonitor(GatewayConfig())
	var captures []Capture
	m.OnSetupComplete = func(c Capture) { captures = append(captures, c) }

	p, err := devices.Lookup("HueBridge")
	if err != nil {
		t.Fatal(err)
	}
	tr := p.Generate(devices.DefaultEnv(), 3, 0)
	for _, pkt := range tr.Packets {
		m.Observe(pkt)
	}
	last := tr.Packets[len(tr.Packets)-1].Timestamp
	m.Tick(last.Add(time.Minute))
	if len(captures) != 1 {
		t.Fatalf("got %d captures, want 1", len(captures))
	}
	if got, want := len(captures[0].Packets), len(tr.Packets); got != want {
		t.Errorf("capture truncated: %d packets, want %d", got, want)
	}
	if !captures[0].Fingerprint().Equal(tr.Fingerprint()) {
		t.Error("capture fingerprint differs from trace fingerprint")
	}
}

func TestReadPcapGroupsByDevice(t *testing.T) {
	env := devices.DefaultEnv()
	p1, err := devices.Lookup("Aria")
	if err != nil {
		t.Fatal(err)
	}
	tr := p1.Generate(env, 9, 0)
	var buf bytes.Buffer
	if err := tr.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	captures, err := ReadPcap(&buf, GatewayConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(captures) != 1 {
		t.Fatalf("got %d captures, want 1", len(captures))
	}
	if captures[0].MAC != p1.MAC {
		t.Errorf("capture MAC = %v, want %v", captures[0].MAC, p1.MAC)
	}
	if !captures[0].Fingerprint().Equal(tr.Fingerprint()) {
		t.Error("pcap capture fingerprint differs from trace")
	}
}

func TestReadPcapRejectsGarbage(t *testing.T) {
	if _, err := ReadPcap(bytes.NewReader(make([]byte, 10)), GatewayConfig()); err == nil {
		t.Error("ReadPcap accepted garbage")
	}
}

// TestMonitorBoundedActiveState is the MAC-churn regression: a flood of
// single-appearance MACs must not grow the active map past its cap —
// the least-recently-active device is force-completed to make room.
func TestMonitorBoundedActiveState(t *testing.T) {
	m := NewMonitor(fastConfig())
	m.Limits = Limits{MaxActive: 32, MaxFinished: 64}
	completed := 0
	m.OnSetupComplete = func(Capture) { completed++ }

	ip := packet.MustParseIP4("192.168.1.5")
	ts := t0
	const churn = 500
	for i := 0; i < churn; i++ {
		mac := packet.MAC{0x02, 0xaa, byte(i >> 8), byte(i), 0x00, 0x01}
		m.Observe(packet.NewBuilder(mac).ARPProbe(ip, ts))
		ts = ts.Add(50 * time.Millisecond)
		if m.Active() > 32 {
			t.Fatalf("after %d MACs: Active = %d, cap is 32", i+1, m.Active())
		}
	}
	st := m.Stats()
	if st.EvictedActive == 0 {
		t.Fatal("no active-state evictions under MAC churn")
	}
	if st.Finished > 64 {
		t.Fatalf("Finished = %d, cap is 64", st.Finished)
	}
	if st.EvictedFinished == 0 {
		t.Fatal("no finished-set evictions under MAC churn")
	}
	m.Flush()
	// Eviction completes captures instead of dropping them: every MAC's
	// single-packet capture must have been delivered.
	if completed != churn {
		t.Fatalf("completed %d captures, want %d (evictions must complete, not drop)", completed, churn)
	}
}

// TestMonitorEvictionPrefersLeastRecentlyActive pins the eviction
// order: at the cap, the device that has been silent longest goes
// first, and activity refreshes a device's position.
func TestMonitorEvictionPrefersLeastRecentlyActive(t *testing.T) {
	m := NewMonitor(fastConfig())
	m.Limits = Limits{MaxActive: 2, MaxFinished: -1}
	var order []packet.MAC
	m.OnSetupComplete = func(c Capture) { order = append(order, c.MAC) }

	macA := packet.MustParseMAC("02:00:00:00:00:a1")
	macB := packet.MustParseMAC("02:00:00:00:00:b1")
	macC := packet.MustParseMAC("02:00:00:00:00:c1")
	ip := packet.MustParseIP4("192.168.1.5")
	ts := t0
	m.Observe(packet.NewBuilder(macA).ARPProbe(ip, ts))
	m.Observe(packet.NewBuilder(macB).ARPProbe(ip, ts.Add(time.Second)))
	// A is refreshed, making B the least recently active.
	m.Observe(packet.NewBuilder(macA).ARPProbe(ip, ts.Add(2*time.Second)))
	// C's arrival at the cap must evict B, not A.
	m.Observe(packet.NewBuilder(macC).ARPProbe(ip, ts.Add(3*time.Second)))
	if len(order) != 1 || order[0] != macB {
		t.Fatalf("evicted %v, want [%s]", order, macB)
	}
	if m.Active() != 2 {
		t.Fatalf("Active = %d, want 2", m.Active())
	}
}

// TestMonitorUnlimitedStateWithNegativeLimits verifies the escape
// hatch: negative caps disable eviction entirely.
func TestMonitorUnlimitedStateWithNegativeLimits(t *testing.T) {
	m := NewMonitor(fastConfig())
	m.Limits = Limits{MaxActive: -1, MaxFinished: -1}
	m.OnSetupComplete = func(Capture) {}

	ip := packet.MustParseIP4("192.168.1.5")
	for i := 0; i < 100; i++ {
		mac := packet.MAC{0x02, 0xab, 0x00, 0x00, byte(i >> 8), byte(i)}
		m.Observe(packet.NewBuilder(mac).ARPProbe(ip, t0))
	}
	st := m.Stats()
	if st.Active != 100 || st.EvictedActive != 0 {
		t.Fatalf("Active = %d evicted = %d; negative limits must not evict", st.Active, st.EvictedActive)
	}
}

// TestMonitorFinishedEvictionAllowsRefingerprinting verifies the
// finished-set contract: once a completed MAC is evicted by the cap, a
// re-appearing device is simply fingerprinted again.
func TestMonitorFinishedEvictionAllowsRefingerprinting(t *testing.T) {
	m := NewMonitor(fastConfig())
	m.Limits = Limits{MaxActive: -1, MaxFinished: 4}
	captures := make(map[packet.MAC]int)
	m.OnSetupComplete = func(c Capture) { captures[c.MAC]++ }

	ip := packet.MustParseIP4("192.168.1.5")
	first := packet.MAC{0x02, 0xac, 0x00, 0x00, 0x00, 0x00}
	ts := t0
	observe := func(mac packet.MAC) {
		m.Observe(packet.NewBuilder(mac).ARPProbe(ip, ts))
		ts = ts.Add(time.Second)
		m.Tick(ts.Add(time.Minute)) // complete immediately via idle gap
		ts = ts.Add(2 * time.Minute)
	}
	observe(first)
	if !m.Seen(first) {
		t.Fatal("first device not marked finished")
	}
	// Eight more completions push the first MAC out of the finished set.
	for i := 1; i <= 8; i++ {
		observe(packet.MAC{0x02, 0xac, 0x00, 0x00, 0x00, byte(i)})
	}
	if m.Seen(first) {
		t.Fatal("first device still finished after cap evictions")
	}
	observe(first)
	if captures[first] != 2 {
		t.Fatalf("first device captured %d times, want 2 (re-fingerprinted after eviction)", captures[first])
	}
}
