// Package iotssp implements the IoT Security Service (paper §III-B): the
// cloud-side component that receives device fingerprints from Security
// Gateways, identifies device-types with the classifier bank, assesses
// their vulnerability, and returns the isolation level to enforce.
//
// # Wire protocol
//
// The service speaks a JSON-lines protocol over TCP: one Request object
// per line, one Response object per line. It is stateless with respect
// to its clients — it stores nothing about gateways between requests, so
// gateways can reach it through an anonymizing transport.
//
// Responses are not guaranteed to arrive in request order. Two things
// reorder them: the read pump answers malformed-request and
// backpressure errors in place, ahead of earlier well-formed requests
// still queued for the dispatcher; and verdicts are written as their
// batch flushes complete. Every response therefore echoes the request's
// MAC and its 1-based line number on the connection (the "line" field);
// clients pipelining several requests on one connection must correlate
// by line (MAC alone is ambiguous once two requests for one device are
// in flight — the pooled gateway client correlates by line).
//
// Two kinds of error response exist:
//
//   - Malformed requests (bad JSON, wrong feature dimensionality) get a
//     response whose "error" names the offending line number. The
//     connection stays open; subsequent lines are processed normally.
//   - Backpressure: when the server's request queue or a connection's
//     response queue is full, or the connection limit is reached, the
//     server answers {"error": ..., "retryable": true} instead of
//     queueing unboundedly. Clients should back off with jitter and
//     retry; the pooled gateway client does this automatically.
//
// # Serving architecture
//
// The Server runs a bounded accept loop (at most MaxConns live
// connections) with one read pump and one write pump per connection. A
// micro-batching dispatcher aggregates decoded requests across all
// connections and flushes them into the bank's IdentifyBatch when the
// batch reaches BatchSize or FlushInterval elapses, whichever is first
// — so one busy gateway or many idle ones both see low latency, and
// the service amortizes forest inference across the fleet. Served from
// a core.ShardedBank, each flush scatters across the bank's shards
// concurrently and gathers the merged verdicts. Duplicate in-flight
// fingerprints collapse to a single computation (singleflight); repeat
// setups of the same device model — the common fleet pattern — cost
// one cache probe instead of a forest pass.
//
// # Shard-versioned verdict cache
//
// Verdicts are cached in an LRU keyed by the canonical fingerprint
// hash (fingerprint.Hash). Each entry is tagged with the shard
// versions it depends on — the shards owning the device-types whose
// classifiers accepted the fingerprint, or every shard for an
// unknown-type verdict, since any future enrolment could claim it.
// Enrolling a new type bumps only the owning shard's version, so
// exactly the dependent entries turn stale (counted as Invalidations)
// while verdicts owned by other shards keep serving. With a
// single-shard bank the vector degenerates to one element and the
// cache behaves like a globally version-tagged one.
//
// # Replicated fleet topology
//
// One logical service can be served by several replicas — independent
// Servers on distinct listeners, composed by Fleet. Replicas sharing
// one Service share its bank and verdict cache (scale the serving
// spine: more accept loops, dispatchers and write pumps over one
// model); replicas with distinct Services form disjoint banks.
// Replicas are independent failure domains: coordination lives
// client-side in gateway.FleetPool, which consistent-hashes device
// MACs across replicas, ejects backends after consecutive failures,
// probes them back in with jittered backoff, and transparently fails
// retryable requests over to a healthy replica. A stopped Replica
// keeps its address so a revived one is found where the client's
// health probes left it.
//
// # Shard-serving mode and the v2 wire verbs
//
// The wire protocol's second generation distributes the classifier
// bank itself. A Server created with NewShardServer hosts one
// core.Bank shard of a logical core.ShardedBank and, instead of
// identify requests, answers the shard verbs — each a JSON line with
// an "op" field:
//
//   - "hello" negotiates: both server modes reply with their mode
//     ("verdict" or "shard") and protocol version, so a client learns
//     what it dialed before pipelining work. A RemoteShard sends it as
//     the first line of every fresh connection and aborts cleanly on a
//     mode or version mismatch.
//   - "classify" carries a whole scatter flush as packed F matrices
//     (the same codec the gateway clients use) and returns each
//     fingerprint's accepted types in shard enrolment order.
//   - "discriminate" runs stage two among this shard's candidates.
//   - "enroll" ships packed training fingerprints; the shard trains
//     the new classifier off the read pump and answers out of order
//     (line-echo correlation keeps pipelined classifies unaffected).
//   - "meta" returns the shard's type list and version.
//
// Every shard response is stamped with the shard's enrolment version.
// RemoteShard — the client side, implementing core.Shard — folds those
// stamps into a local version cache so Versions() on the logical bank
// stays a handful of atomic loads, and a remote enrolment invalidates
// exactly the dependent verdict-cache entries without polling.
// Version-1 clients that reach a shard endpoint get a clean retryable
// error naming the mode (never a malformed-line reply); shard verbs
// against a verdict endpoint fail non-retryably the same way. A shard
// served behind a Replica (NewShardReplica) restarts in place, and
// RemoteShard's reconnect/retry with jittered backoff carries
// in-flight scatters across the outage.
//
// Every client in this package — the legacy single-connection Client
// and RemoteShard's pipelined links alike — rides internal/lineconn,
// the shared line-correlated transport (line-echo correlation,
// connection-generation guard, fail-fast waiter semantics, lazy
// reconnect); RemoteShard plugs the hello negotiation in through the
// transport's handshake hook, so a mode or version mismatch fails the
// dial instead of surfacing mid-pipeline.
//
// # Replicated shard groups
//
// One partition can be served by several shard servers hosting
// bit-identical banks. ShardGroup composes N such members into a
// single health-aware core.Shard: reads (classify/discriminate/meta)
// round-robin across admitted members and fail over transparently when
// one dies mid-flight; consecutive failures eject a member from
// routing and a probing re-admission with jittered doubling backoff
// brings a revived one back — so a shard-server restart costs zero
// added latency for the logical bank above, instead of every in-flight
// scatter riding a single RemoteShard's deep retry loop until the
// server returns. Enrolments fan out to every member (each replica
// trains the type, keeping reads equivalent wherever they land) and
// the group's Version reconciles to the maximum member stamp, so a
// fan-out enrolment bumps the logical shard's version exactly once and
// the verdict cache invalidates its dependents exactly once, never
// once per replica.
//
// # The v3 compaction generation
//
// Protocol version 3 collapses the shard plane's wire cost in three
// ways, each negotiated at hello so mixed-version fleets degrade to
// the v2 cost instead of failing. OpSnapshot/OpRestore transfer a
// shard bank's whole trained state as one canonical blob
// (core.Bank.Snapshot): the control plane mints replacement group
// members by state transfer — O(snapshot bytes) instead of replaying
// and retraining the partition's enrolment history — and the blob's
// canonical encoding makes bit-identity a byte compare
// (core.SnapshotsEqual). Classify batches may carry delta-packed F
// matrices ("enc":"delta", fingerprint.PackDelta), shrinking rows that
// repeat within a fingerprint. And a client's hello may subscribe to
// the shard's delta stream: the server pushes OpDelta version bumps
// (uncorrelated lines, carried to the client by the transport's push
// hook) whenever the shard's state changes, so a subscribed front's
// version cache — and with it the verdict cache's shard-scoped
// invalidation — moves without any polling round-trip. A v2 peer
// answers the v3 verbs with a non-retryable unknown-op error and
// refuses delta-encoded batches; clients therefore keep every v3
// feature off unless the negotiated version reaches 3.
//
// # The v4 wire-compression generation
//
// Protocol version 4 makes connections stateful to attack the fleet's
// actual redundancy: the same device models submit near-identical F
// matrices across requests, so v3's intra-matrix deltas barely help.
// Both options ride the hello and degrade cleanly against older peers.
//
//	verb / field         direction        negotiation
//	hello dict:N         client asks      server replies dict:min(N, MaxDictSize)
//	                                      and both ends build an N-entry
//	                                      fingerprint.Dict for this
//	                                      connection; absent/0 = no dict
//	hello comp:"flate"   client asks      server echoes comp:"flate" and
//	                                      everything after the hello
//	                                      reply travels as framed flate
//	                                      (lineconn.FrameWriter); absent
//	                                      = plain lines
//	enc:"dict"           classify /       batch entries and identify
//	                     discriminate /   matrices are dictionary
//	                     identify         entries ('F' full, 'R' exact
//	                                      reference — 'R' plus the
//	                                      base64url of the 8-byte
//	                                      content hash — 'D' near-match
//	                                      diff); only valid once a dict
//	                                      was negotiated on this
//	                                      connection
//	interned names       both, shard      on a dict connection the
//	                     verbs only       recurring device-type names
//	                                      (discriminate candidates;
//	                                      classify accepts, best, score
//	                                      keys) travel through
//	                                      per-direction intern tables:
//	                                      "=name" defines the next
//	                                      index, "#k" references it,
//	                                      "~name" escapes a literal;
//	                                      map keys are reference-or-
//	                                      literal only (marshal order
//	                                      is not definition order)
//	op echo              response         a dict connection drops the
//	                                      op echo on correlated shard
//	                                      replies (the line echo
//	                                      correlates); hello replies
//	                                      and OpDelta pushes — which
//	                                      have no line — keep it
//
// A dictionary and its name tables are strictly per-connection state:
// encoder transactions commit only for lines actually written, the
// server decodes them in line order on the read pump, and a decode
// failure (a stale 'R' reference, an unknown "#k" name) answers a
// non-retryable error and severs the connection — both ends then
// rebuild empty state on the reconnect (the lineconn incarnation is
// the dictionary generation), so a stale reference can never decode
// against a cache the peer no longer holds. Servers with ProtocolCap
// < 4 and v3-or-older clients never see any of this: the hello fields
// go unanswered and the connection serves the v3 (or v2) wire forms
// unchanged.
package iotssp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/enforce"
	"repro/internal/fingerprint"
	"repro/internal/vulndb"
)

// ProtocolVersion is the wire protocol generation this build speaks.
// Version 1 is the original identify-only JSON-lines protocol (every
// line is a Request, every reply a Response). Version 2 adds the shard
// verbs (OpHello, OpMeta, OpClassify, OpDiscriminate, OpEnroll) spoken
// to a shard-serving Server, plus the OpHello negotiation both server
// modes answer so a client can discover what it is talking to before
// pipelining work onto the connection. Version 3 adds the compaction
// generation: the snapshot verbs (OpSnapshot, OpRestore — whole-shard
// state transfer), delta-packed classify batches (the "enc":"delta"
// encoding) and the hello's delta-stream subscription (the server
// pushes OpDelta version bumps to subscribers instead of clients
// learning of remote enrolments only from response stamps). Clients
// accept any peer >= 2 and simply keep the version-3 features off
// against an older one, so mixed-version fleets degrade to the v2 wire
// cost rather than failing. Version 4 adds connection-stateful wire
// compression: the hello negotiates a per-connection fingerprint
// dictionary (the "enc":"dict" encoding for classify, discriminate and
// identify matrices) and optionally framed flate transport compression
// ("comp":"flate"); see the package doc's v4 section for the
// negotiation table and coherence rules.
const ProtocolVersion = 4

// Wire operations (the Request/shardRequest "op" field). An empty op is
// a version-1 identify request.
const (
	// OpHello negotiates: both server modes answer with their mode
	// ("verdict" or "shard") and protocol version, so mismatched clients
	// fail cleanly at connect instead of mid-pipeline.
	OpHello = "hello"
	// OpMeta asks a shard server for its type list and version.
	OpMeta = "meta"
	// OpClassify runs stage one over a batch of packed fingerprints.
	OpClassify = "classify"
	// OpDiscriminate runs stage two among candidate types.
	OpDiscriminate = "discriminate"
	// OpEnroll trains a new device-type classifier on the shard.
	OpEnroll = "enroll"
	// OpRemove retires a device-type from the shard (tombstone drain:
	// the classifier is dropped, the prints stay for racing
	// discriminations, the version bumps once).
	OpRemove = "remove"
	// OpSnapshot asks a shard server for its bank's serialized trained
	// state (protocol >= 3). The control plane mints replacement group
	// members by transferring it instead of replaying enrolment history.
	OpSnapshot = "snapshot"
	// OpRestore replaces a shard server's bank state with a transferred
	// snapshot (protocol >= 3).
	OpRestore = "restore"
	// OpDelta is a server-initiated push (no line echo), sent to hello
	// subscribers when the shard's state changes: it carries the new
	// version and the changed type names, so a subscribed client's
	// version cache moves without a classify round-trip.
	OpDelta = "delta"
)

// deltaEncoding is the shardRequest Enc value selecting delta-packed F
// matrices (fingerprint.PackDelta) in classify batches, negotiated at
// protocol >= 3.
const deltaEncoding = "delta"

// DictEncoding is the Enc value selecting dictionary-coded F matrices
// (fingerprint.Dict entries) in classify, discriminate and identify
// requests — valid only on a connection whose hello negotiated a
// dictionary (protocol >= 4).
const DictEncoding = "dict"

// CompFlate is the hello Comp value asking for framed flate transport
// compression after the handshake (protocol >= 4).
const CompFlate = "flate"

// DefaultDictSize is the per-connection dictionary capacity clients
// propose at hello: enough for a fleet's distinct recurring device
// models without holding a one-off matrix forever.
const DefaultDictSize = 512

// MaxDictSize caps the dictionary capacity a server agrees to,
// bounding per-connection memory whatever a client asks for.
const MaxDictSize = 4096

// WireMode selects a client stack's v4 wire compression: off (the v3
// wire forms), the per-connection fingerprint dictionary, or the
// dictionary plus framed flate transport compression. Zero value is
// off, so existing configs are unchanged.
type WireMode int

const (
	// WireOff sends the pre-v4 wire forms (packed or delta-packed
	// matrices, plain lines).
	WireOff WireMode = iota
	// WireDict negotiates the per-connection fingerprint dictionary.
	WireDict
	// WireDictFlate negotiates the dictionary plus framed flate
	// transport compression for the residual bytes.
	WireDictFlate
)

// String renders the mode as the sentinel-eval -wire flag spells it.
func (m WireMode) String() string {
	switch m {
	case WireDict:
		return "dict"
	case WireDictFlate:
		return "dict+flate"
	default:
		return "off"
	}
}

// ParseWireMode parses the sentinel-eval -wire flag values.
func ParseWireMode(s string) (WireMode, error) {
	switch s {
	case "", "off":
		return WireOff, nil
	case "dict":
		return WireDict, nil
	case "dict+flate", "flate+dict":
		return WireDictFlate, nil
	}
	return WireOff, fmt.Errorf("iotssp: unknown wire mode %q (want off, dict or dict+flate)", s)
}

// Request is one identification request from a Security Gateway.
type Request struct {
	// Op selects the wire operation. Empty means identify (the version-1
	// protocol); OpHello asks the server to introduce itself. The shard
	// verbs are only valid against a shard-serving server — a verdict
	// server answers them with a non-retryable error naming its mode.
	Op string `json:"op,omitempty"`
	// Fingerprint is the device's fingerprint report (MAC + F matrix).
	Fingerprint fingerprint.Report `json:"fingerprint"`
	// V is the client's protocol version, sent with OpHello (protocol
	// >= 4 clients negotiating wire compression; older clients omit it).
	V int `json:"v,omitempty"`
	// Comp and Dict are the OpHello wire-compression asks: framed flate
	// transport compression (CompFlate) and a per-connection fingerprint
	// dictionary of the given capacity. The server's hello reply echoes
	// what it agreed to.
	Comp string `json:"comp,omitempty"`
	Dict int    `json:"dict,omitempty"`
	// Enc marks how Fingerprint's matrix travels: empty for the packed
	// form, DictEncoding for a dictionary entry (Fingerprint.Packed then
	// holds the entry; protocol >= 4, negotiated dictionary required).
	Enc string `json:"enc,omitempty"`
}

// Response is the service's answer.
type Response struct {
	// MAC echoes the device MAC from the request so the gateway can
	// correlate concurrent requests.
	MAC string `json:"mac"`
	// Line echoes the 1-based request line number on the connection that
	// carried it (0 for responses not tied to a connection line, e.g.
	// from Service.Handle directly). With out-of-order responses it
	// gives clients an exact correlation key.
	Line uint64 `json:"line,omitempty"`
	// Known reports whether any classifier accepted the fingerprint.
	Known bool `json:"known"`
	// DeviceType is the identified type (empty if unknown).
	DeviceType string `json:"device_type,omitempty"`
	// Stage is the pipeline stage that decided ("classification",
	// "discrimination" or "none").
	Stage string `json:"stage"`
	// Level is the isolation level to enforce ("strict", "restricted",
	// "trusted").
	Level string `json:"level"`
	// PermittedEndpoints lists the cloud endpoints a restricted device
	// may contact, as dotted-quad strings.
	PermittedEndpoints []string `json:"permitted_endpoints,omitempty"`
	// Vulnerabilities lists the advisory IDs behind a restricted verdict.
	Vulnerabilities []string `json:"vulnerabilities,omitempty"`
	// NotifyUser is set when the device has flaws reachable over
	// channels the gateway cannot filter (Bluetooth, LTE, proprietary
	// radios): isolation is insufficient and the user should remove the
	// device (§III-C3). UncontrolledChannels names the channels.
	NotifyUser           bool     `json:"notify_user,omitempty"`
	UncontrolledChannels []string `json:"uncontrolled_channels,omitempty"`
	// Error is set when the request could not be processed.
	Error string `json:"error,omitempty"`
	// Retryable marks an error as transient server backpressure (request
	// queue full, connection limit): the request was well-formed and may
	// be retried after a backoff. Malformed-request errors are never
	// retryable.
	Retryable bool `json:"retryable,omitempty"`
	// Mode, V, Comp and Dict surface the server's OpHello answer to a
	// verdict-plane client (the reply travels as a shardResponse on the
	// wire; these mirror the fields a gateway.Pool needs to read the
	// negotiation): serving mode, protocol cap, and the agreed wire
	// compression. Empty on ordinary identify responses.
	Mode string `json:"mode,omitempty"`
	V    int    `json:"v,omitempty"`
	Comp string `json:"comp,omitempty"`
	Dict int    `json:"dict,omitempty"`
}

// CorrelationLine implements lineconn.Message: pipelined clients
// correlate responses to request lines by the echoed line number.
func (r Response) CorrelationLine() uint64 { return r.Line }

// ParseLevel converts a wire level name back to the enforcement type.
func ParseLevel(s string) (enforce.IsolationLevel, error) {
	switch s {
	case "strict":
		return enforce.Strict, nil
	case "restricted":
		return enforce.Restricted, nil
	case "trusted":
		return enforce.Trusted, nil
	default:
		return 0, fmt.Errorf("iotssp: unknown isolation level %q", s)
	}
}

// DefaultCacheSize is the verdict cache capacity NewService selects.
const DefaultCacheSize = 4096

// Bank is the identification backend a Service serves from: the plain
// single-shard core.Bank or the scatter/gather core.ShardedBank.
// Implementations must be safe for concurrent use; Versions exposes the
// per-shard enrolment version vector the verdict cache tags entries
// with, and ShardOf maps an enrolled type to its owning shard so a
// verdict's cache entry depends only on the shards that produced it.
type Bank interface {
	Identify(fp *fingerprint.Fingerprint) core.Result
	IdentifyBatch(fps []*fingerprint.Fingerprint, workers int) []core.Result
	Versions() []uint64
	ShardOf(name string) (int, bool)
}

// Service identifies fingerprints and maps device-types to isolation
// levels, caching verdicts by fingerprint hash. It is safe for
// concurrent use — including concurrent use from several Servers, the
// replicated-fleet topology where multiple listeners share one bank
// and one verdict cache.
type Service struct {
	bank Bank
	db   *vulndb.DB
	// endpoints maps device-type to the permitted cloud endpoints used
	// for the Restricted level.
	endpoints map[string][]string
	// cache is the LRU+singleflight verdict cache; nil disables caching.
	cache *verdictCache
}

// ServiceConfig configures a Service. The zero value selects the
// defaults: no vulnerability repository, no per-type endpoints, and the
// default verdict cache.
type ServiceConfig struct {
	// DB is the vulnerability repository consulted per verdict; nil
	// serves without one.
	DB *vulndb.DB
	// Endpoints maps device-type to the permitted cloud endpoints used
	// for the Restricted level.
	Endpoints map[string][]string
	// CacheSize is the verdict cache capacity. 0 selects
	// DefaultCacheSize; a negative value disables caching (every request
	// computes a verdict) — the per-request baseline the load
	// experiments compare against.
	CacheSize int
}

// NewService assembles a service over a trained bank.
func NewService(bank Bank, cfg ServiceConfig) *Service {
	if cfg.CacheSize == 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	eps := make(map[string][]string, len(cfg.Endpoints))
	for t, list := range cfg.Endpoints {
		eps[t] = append([]string(nil), list...)
	}
	return &Service{bank: bank, db: cfg.DB, endpoints: eps, cache: newVerdictCache(cfg.CacheSize)}
}

// Bank returns the identification backend the service serves from.
func (s *Service) Bank() Bank { return s.bank }

// CacheStats snapshots the verdict cache counters (zero when caching is
// disabled).
func (s *Service) CacheStats() CacheStats { return s.cache.stats() }

// depsFor derives the cache dependencies of a verdict computed against
// the given version snapshot: the shards owning the accepted types, or
// every shard for an unknown verdict (any future enrolment could claim
// it).
func (s *Service) depsFor(res core.Result, snapshot []uint64) verdictDeps {
	if !res.Known || len(res.Accepted) == 0 {
		return depsAll(snapshot)
	}
	shards := make([]int, 0, len(res.Accepted))
	for _, name := range res.Accepted {
		if sh, ok := s.bank.ShardOf(name); ok {
			shards = append(shards, sh)
		}
	}
	if len(shards) < len(res.Accepted) {
		// An accepted type has no owner on record (it raced an Enroll
		// rollback); be conservative.
		return depsAll(snapshot)
	}
	return depsOn(snapshot, shards)
}

// Handle processes one request.
func (s *Service) Handle(req Request) Response {
	mac, fp, err := fingerprint.UnmarshalReportStruct(req.Fingerprint)
	if err != nil {
		return Response{Error: err.Error()}
	}
	return s.Identify(mac, fp)
}

// Identify returns the verdict for one decoded fingerprint, consulting
// the verdict cache. Concurrent calls with the same fingerprint
// collapse to one bank identification.
func (s *Service) Identify(mac string, fp *fingerprint.Fingerprint) Response {
	resp := s.verdict(fp)
	resp.MAC = mac
	return resp
}

// verdict computes or recalls the MAC-less verdict for fp. The
// version-vector snapshot is taken per request — a few atomic loads
// and one small allocation, noise next to the JSON encode every
// response pays, and the vector must outlive the call anyway when a
// miss registers it on the singleflight flight.
func (s *Service) verdict(fp *fingerprint.Fingerprint) Response {
	if s.cache == nil {
		return s.assemble(s.bank.Identify(fp))
	}
	snapshot := s.bank.Versions()
	resp, _ := s.cache.do(fp.Hash(), snapshot, func() (Response, verdictDeps, bool) {
		res := s.bank.Identify(fp)
		return s.assemble(res), s.depsFor(res, snapshot), true
	})
	return resp
}

// assemble turns an identification result into the wire verdict:
// vulnerability assessment, isolation level, permitted endpoints and
// user notification. The slices in the returned Response are shared
// with the cache and must be treated as immutable.
func (s *Service) assemble(res core.Result) Response {
	resp := Response{
		Known: res.Known,
		Stage: res.Stage.String(),
	}
	if !res.Known {
		resp.Level = enforce.Strict.String()
		return resp
	}
	resp.DeviceType = res.Type
	assessment := s.db.Assess(res.Type)
	level := assessment.Level()
	resp.Level = level.String()
	if level == enforce.Restricted {
		resp.PermittedEndpoints = append([]string(nil), s.endpoints[res.Type]...)
		for _, v := range assessment.Vulns {
			resp.Vulnerabilities = append(resp.Vulnerabilities, v.ID)
		}
	}
	if notify, channels := assessment.RequiresUserNotification(); notify {
		resp.NotifyUser = true
		resp.UncontrolledChannels = channels
	}
	return resp
}

// HandleBatch processes a batch of requests and returns responses in
// input order. Well-formed requests flow through IdentifyBatch (cache,
// dedup, batched bank inference); malformed ones get per-request error
// responses without poisoning the rest of the batch.
func (s *Service) HandleBatch(reqs []Request, workers int) []Response {
	out := make([]Response, len(reqs))
	macs := make([]string, 0, len(reqs))
	fps := make([]*fingerprint.Fingerprint, 0, len(reqs))
	idx := make([]int, 0, len(reqs))
	for i, req := range reqs {
		mac, fp, err := fingerprint.UnmarshalReportStruct(req.Fingerprint)
		if err != nil {
			out[i] = Response{Error: err.Error()}
			continue
		}
		macs = append(macs, mac)
		fps = append(fps, fp)
		idx = append(idx, i)
	}
	for j, resp := range s.IdentifyBatch(macs, fps, workers) {
		out[idx[j]] = resp
	}
	return out
}

// IdentifyBatch returns verdicts for decoded fingerprints in input
// order, stamping macs[i] on the i-th response. Repeat fingerprints are
// served from the verdict cache; the distinct misses are deduplicated
// and identified in one Bank.IdentifyBatch pass fanned across workers
// (<= 0 selects GOMAXPROCS); duplicates in flight elsewhere are waited
// on rather than recomputed.
func (s *Service) IdentifyBatch(macs []string, fps []*fingerprint.Fingerprint, workers int) []Response {
	out := make([]Response, len(fps))
	if len(fps) == 0 {
		return out
	}
	if s.cache == nil {
		for i, res := range s.bank.IdentifyBatch(fps, workers) {
			out[i] = s.assemble(res)
			out[i].MAC = macs[i]
		}
		return out
	}

	snapshot := s.bank.Versions()
	// lead is one distinct fingerprint this batch must compute, and
	// every batch index waiting on it.
	type lead struct {
		key  uint64
		fp   *fingerprint.Fingerprint
		f    *flight
		idxs []int
	}
	type waiter struct {
		idx int
		fp  *fingerprint.Fingerprint
		f   *flight
	}
	var leads []*lead
	byKey := make(map[uint64]*lead)
	var waits []waiter
	for i, fp := range fps {
		key := fp.Hash()
		if l := byKey[key]; l != nil {
			// In-batch duplicate: ride the leader's computation.
			l.idxs = append(l.idxs, i)
			s.cache.noteShared()
			continue
		}
		resp, state, f := s.cache.begin(key, snapshot)
		switch state {
		case beginHit:
			out[i] = resp
		case beginShared:
			waits = append(waits, waiter{idx: i, fp: fp, f: f})
		default: // beginLeader
			l := &lead{key: key, fp: fp, f: f, idxs: []int{i}}
			byKey[key] = l
			leads = append(leads, l)
		}
	}

	if len(leads) > 0 {
		batch := make([]*fingerprint.Fingerprint, len(leads))
		for j, l := range leads {
			batch[j] = l.fp
		}
		results := s.bank.IdentifyBatch(batch, workers)
		for j, l := range leads {
			resp := s.assemble(results[j])
			s.cache.finish(l.key, l.f, resp, s.depsFor(results[j], snapshot), true)
			for _, i := range l.idxs {
				out[i] = resp
			}
		}
	}

	// Fingerprints being computed by concurrent callers (Handle or
	// another batch): wait for their verdicts.
	for _, w := range waits {
		<-w.f.done
		if w.f.ok {
			out[w.idx] = w.f.resp
		} else {
			out[w.idx] = s.verdict(w.fp)
		}
	}

	for i := range out {
		out[i].MAC = macs[i]
	}
	return out
}
