package fingerprint

import (
	"encoding/json"
	"fmt"

	"repro/internal/features"
)

// Report is the wire form of a device fingerprint as the Security Gateway
// submits it to the IoT Security Service. It carries no identity beyond
// the observed MAC (needed by the gateway to apply the returned isolation
// level); the IoTSSP stores nothing about its clients.
type Report struct {
	// MAC is the device's hardware address as printed by packet.MAC.
	MAC string `json:"mac"`
	// Vectors is the F matrix, one row per packet column.
	Vectors [][]int32 `json:"vectors"`
}

// MarshalReportStruct builds the wire struct for a fingerprint.
func MarshalReportStruct(mac string, f *Fingerprint) (Report, error) {
	if f == nil {
		return Report{}, fmt.Errorf("encoding fingerprint report: nil fingerprint")
	}
	rows := make([][]int32, f.Len())
	for i := 0; i < f.Len(); i++ {
		v := f.At(i)
		rows[i] = append([]int32(nil), v[:]...)
	}
	return Report{MAC: mac, Vectors: rows}, nil
}

// UnmarshalReportStruct validates and decodes a wire struct.
func UnmarshalReportStruct(r Report) (string, *Fingerprint, error) {
	vs := make([]features.Vector, len(r.Vectors))
	for i, row := range r.Vectors {
		if len(row) != features.NumFeatures {
			return "", nil, fmt.Errorf("decoding fingerprint report: row %d has %d features, want %d",
				i, len(row), features.NumFeatures)
		}
		copy(vs[i][:], row)
	}
	return r.MAC, FromVectors(vs), nil
}

// MarshalReport encodes a fingerprint into its JSON wire form.
func MarshalReport(mac string, f *Fingerprint) ([]byte, error) {
	r, err := MarshalReportStruct(mac, f)
	if err != nil {
		return nil, err
	}
	b, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("encoding fingerprint report: %w", err)
	}
	return b, nil
}

// UnmarshalReport decodes a JSON fingerprint report, validating vector
// dimensionality.
func UnmarshalReport(b []byte) (string, *Fingerprint, error) {
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return "", nil, fmt.Errorf("decoding fingerprint report: %w", err)
	}
	return UnmarshalReportStruct(r)
}
