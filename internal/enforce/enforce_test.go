package enforce

import (
	"testing"
	"time"

	"repro/internal/flowtable"
	"repro/internal/packet"
)

var (
	localNet = packet.MustParseIP4("192.168.1.0")
	gwMAC    = packet.MustParseMAC("02:00:00:00:00:01")
	devA     = packet.MustParseMAC("02:73:74:7e:a9:c2") // will be strict
	devB     = packet.MustParseMAC("02:73:74:7e:a9:c3") // will be restricted
	devC     = packet.MustParseMAC("02:73:74:7e:a9:c4") // will be trusted
	devD     = packet.MustParseMAC("02:73:74:7e:a9:c5") // will be trusted
	ipA      = packet.MustParseIP4("192.168.1.10")
	cloud    = packet.MustParseIP4("52.28.14.9")
	other    = packet.MustParseIP4("52.1.2.3")
	t0       = time.Date(2016, 3, 1, 10, 0, 0, 0, time.UTC)
)

// engineFixture builds an engine with one device per level.
func engineFixture(t *testing.T) *Engine {
	t.Helper()
	e := NewEngine(localNet)
	e.SetInfrastructure(gwMAC)
	rules := []Rule{
		{DeviceMAC: devA, DeviceType: "UnknownThing", Level: Strict},
		{DeviceMAC: devB, DeviceType: "EdimaxCam", Level: Restricted, PermittedIPs: []packet.IP4{cloud}},
		{DeviceMAC: devC, DeviceType: "HueBridge", Level: Trusted},
		{DeviceMAC: devD, DeviceType: "Aria", Level: Trusted},
	}
	for _, r := range rules {
		if err := e.SetRule(r); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func TestIsolationLevelStrings(t *testing.T) {
	if Strict.String() != "strict" || Restricted.String() != "restricted" || Trusted.String() != "trusted" {
		t.Error("level names wrong")
	}
	if IsolationLevel(0).Valid() || IsolationLevel(4).Valid() {
		t.Error("invalid levels accepted")
	}
	if !Strict.Valid() || !Trusted.Valid() {
		t.Error("valid levels rejected")
	}
}

func TestSetRuleValidation(t *testing.T) {
	e := NewEngine(localNet)
	if err := e.SetRule(Rule{DeviceMAC: devA, Level: IsolationLevel(9)}); err == nil {
		t.Error("invalid level accepted")
	}
	if err := e.SetRule(Rule{DeviceMAC: devA, Level: Strict}); err != nil {
		t.Fatal(err)
	}
	if e.Len() != 1 {
		t.Errorf("Len = %d, want 1", e.Len())
	}
}

func TestRuleHashStability(t *testing.T) {
	r1 := Rule{DeviceMAC: devA, Level: Restricted, PermittedIPs: []packet.IP4{cloud, other}}
	r2 := Rule{DeviceMAC: devA, Level: Restricted, PermittedIPs: []packet.IP4{other, cloud}}
	if r1.Hash() != r2.Hash() {
		t.Error("hash depends on permitted-IP order")
	}
	r3 := Rule{DeviceMAC: devA, Level: Trusted}
	if r1.Hash() == r3.Hash() {
		t.Error("hash ignores level")
	}
	r4 := Rule{DeviceMAC: devB, Level: Restricted, PermittedIPs: []packet.IP4{cloud, other}}
	if r1.Hash() == r4.Hash() {
		t.Error("hash ignores MAC")
	}
}

func TestDecideLocalOverlays(t *testing.T) {
	e := engineFixture(t)
	tests := []struct {
		name     string
		src, dst packet.MAC
		allow    bool
	}{
		{"strict to strict peer", devA, devB, true}, // both untrusted overlay
		{"restricted to strict", devB, devA, true},  // both untrusted overlay
		{"strict to trusted", devA, devC, false},    // cross overlay
		{"trusted to strict", devC, devA, false},    // cross overlay
		{"trusted to trusted", devC, devD, true},    // same overlay
		{"strict to gateway", devA, gwMAC, true},    // infrastructure
		{"gateway to trusted", gwMAC, devC, true},   // infrastructure
		{"strict to broadcast", devA, packet.BroadcastMAC, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := e.DecideLocal(tt.src, tt.dst)
			if v.Allow != tt.allow {
				t.Errorf("DecideLocal = %+v, want allow=%v", v, tt.allow)
			}
		})
	}
}

func TestDecideExternal(t *testing.T) {
	e := engineFixture(t)
	tests := []struct {
		name  string
		src   packet.MAC
		dst   packet.IP4
		allow bool
	}{
		{"strict to internet", devA, cloud, false},
		{"restricted to permitted", devB, cloud, true},
		{"restricted to other", devB, other, false},
		{"trusted anywhere", devC, other, true},
		{"unknown device", packet.MustParseMAC("aa:aa:aa:aa:aa:aa"), cloud, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := e.DecideExternal(tt.src, tt.dst)
			if v.Allow != tt.allow {
				t.Errorf("DecideExternal = %+v, want allow=%v", v, tt.allow)
			}
		})
	}
}

func TestDecideInboundMirrors(t *testing.T) {
	e := engineFixture(t)
	if v := e.DecideInbound(cloud, devB); !v.Allow {
		t.Errorf("permitted endpoint inbound = %+v, want allow", v)
	}
	if v := e.DecideInbound(other, devB); v.Allow {
		t.Errorf("non-permitted inbound = %+v, want deny", v)
	}
	if v := e.DecideInbound(other, devA); v.Allow {
		t.Errorf("inbound to strict = %+v, want deny", v)
	}
	if v := e.DecideInbound(other, devC); !v.Allow {
		t.Errorf("inbound to trusted = %+v, want allow", v)
	}
}

func TestDecidePacketRouting(t *testing.T) {
	e := engineFixture(t)
	b := packet.NewBuilder(devB)
	b.SetIP(ipA)
	// Outbound to permitted cloud: allowed.
	if v := e.DecidePacket(b.TCPSynPkt(gwMAC, cloud, 49152, 443, t0)); !v.Allow {
		t.Errorf("outbound permitted = %+v", v)
	}
	// Outbound to other: denied.
	if v := e.DecidePacket(b.TCPSynPkt(gwMAC, other, 49152, 443, t0)); v.Allow {
		t.Errorf("outbound non-permitted = %+v", v)
	}
	// Local to broadcast: allowed.
	if v := e.DecidePacket(b.DHCPDiscoverPkt(1, "x", t0)); !v.Allow {
		t.Errorf("broadcast = %+v", v)
	}
	// Inbound from non-permitted remote to restricted device: denied.
	rb := packet.NewBuilder(packet.MustParseMAC("02:00:00:00:00:99"))
	rb.SetIP(other)
	inbound := rb.TCPSynPkt(devB, ipA, 443, 49152, t0)
	inbound.Eth.Dst = devB
	if v := e.DecidePacket(inbound); v.Allow {
		t.Errorf("inbound from stranger = %+v, want deny", v)
	}
}

func TestIsLocal(t *testing.T) {
	e := NewEngine(localNet)
	if !e.IsLocal(packet.MustParseIP4("192.168.1.200")) {
		t.Error("subnet address not local")
	}
	if e.IsLocal(cloud) {
		t.Error("cloud address local")
	}
	if !e.IsLocal(packet.IP4Broadcast) || !e.IsLocal(packet.IP4MDNS) || !e.IsLocal(packet.IP4Zero) {
		t.Error("broadcast/multicast/zero should be treated as local")
	}
}

func TestRemoveRule(t *testing.T) {
	e := engineFixture(t)
	if !e.RemoveRule(devA) {
		t.Error("RemoveRule(existing) = false")
	}
	if e.RemoveRule(devA) {
		t.Error("RemoveRule(absent) = true")
	}
	if _, ok := e.RuleFor(devA); ok {
		t.Error("rule still present after removal")
	}
}

func TestRulesSortedCopy(t *testing.T) {
	e := engineFixture(t)
	rules := e.Rules()
	if len(rules) != 4 {
		t.Fatalf("Rules() returned %d, want 4", len(rules))
	}
	for i := 1; i < len(rules); i++ {
		if rules[i-1].DeviceMAC.String() >= rules[i].DeviceMAC.String() {
			t.Error("Rules() not sorted by MAC")
		}
	}
	// Mutating the copy must not affect the engine.
	rules[0].Level = Trusted
	if r, _ := e.RuleFor(devA); r.Level != Strict {
		t.Error("Rules() leaked internal state")
	}
}

func TestOverlayPeers(t *testing.T) {
	e := engineFixture(t)
	// Untrusted overlay: devA (strict) and devB (restricted).
	peers := e.OverlayPeers(Strict, devA)
	if len(peers) != 1 || peers[0] != devB {
		t.Errorf("OverlayPeers(strict, devA) = %v, want [devB]", peers)
	}
	// Trusted overlay: devC, devD.
	peers = e.OverlayPeers(Trusted, devC)
	if len(peers) != 1 || peers[0] != devD {
		t.Errorf("OverlayPeers(trusted, devC) = %v, want [devD]", peers)
	}
}

func TestMemoryFootprintGrowsLinearly(t *testing.T) {
	e := NewEngine(localNet)
	base := e.MemoryFootprint()
	for i := 0; i < 100; i++ {
		mac := devA
		mac[5] = byte(i)
		mac[4] = byte(i >> 8)
		if err := e.SetRule(Rule{DeviceMAC: mac, Level: Restricted, PermittedIPs: []packet.IP4{cloud}}); err != nil {
			t.Fatal(err)
		}
	}
	after100 := e.MemoryFootprint()
	for i := 100; i < 200; i++ {
		mac := devA
		mac[5] = byte(i)
		mac[4] = byte(i >> 8)
		if err := e.SetRule(Rule{DeviceMAC: mac, Level: Restricted, PermittedIPs: []packet.IP4{cloud}}); err != nil {
			t.Fatal(err)
		}
	}
	after200 := e.MemoryFootprint()
	g1 := after100 - base
	g2 := after200 - after100
	if g1 <= 0 || g2 <= 0 {
		t.Fatalf("footprint not growing: %d, %d", g1, g2)
	}
	ratio := float64(g2) / float64(g1)
	if ratio < 0.9 || ratio > 1.1 {
		t.Errorf("growth not linear: first 100 rules %dB, next 100 %dB", g1, g2)
	}
}

func TestCompileFlowRulesSemantics(t *testing.T) {
	restricted := Rule{DeviceMAC: devB, Level: Restricted, PermittedIPs: []packet.IP4{cloud}}
	tbl := flowtable.New(flowtable.WithDefaultAction(flowtable.ActionController))
	for _, fr := range CompileFlowRules(restricted, []packet.MAC{devA}, gwMAC, packet.MustParseIP4("192.168.1.1")) {
		tbl.Add(fr)
	}

	b := packet.NewBuilder(devB)
	b.SetIP(ipA)
	tests := []struct {
		name string
		pkt  *packet.Packet
		want flowtable.Action
	}{
		{"to gateway", b.TCPSynPkt(gwMAC, packet.MustParseIP4("192.168.1.1"), 49152, 53, t0), flowtable.ActionForward},
		{"broadcast", b.DHCPDiscoverPkt(1, "x", t0), flowtable.ActionForward},
		{"to overlay peer", b.TCPSynPkt(devA, packet.MustParseIP4("192.168.1.10"), 49152, 80, t0), flowtable.ActionForward},
		{"to permitted cloud", b.TCPSynPkt(gwMAC, cloud, 49152, 443, t0), flowtable.ActionForward},
		{"to other remote", b.TCPSynPkt(gwMAC, other, 49152, 443, t0), flowtable.ActionDrop},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tbl.LookupPacket(tt.pkt); got != tt.want {
				t.Errorf("action = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCompileFlowRulesTrustedForwards(t *testing.T) {
	trusted := Rule{DeviceMAC: devC, Level: Trusted}
	tbl := flowtable.New(flowtable.WithDefaultAction(flowtable.ActionController))
	for _, fr := range CompileFlowRules(trusted, nil, gwMAC, packet.MustParseIP4("192.168.1.1")) {
		tbl.Add(fr)
	}
	b := packet.NewBuilder(devC)
	b.SetIP(packet.MustParseIP4("192.168.1.12"))
	if got := tbl.LookupPacket(b.TCPSynPkt(gwMAC, other, 49152, 443, t0)); got != flowtable.ActionForward {
		t.Errorf("trusted internet flow = %v, want forward", got)
	}
}

func TestCompileFlowRulesCookie(t *testing.T) {
	r := Rule{DeviceMAC: devB, Level: Restricted, PermittedIPs: []packet.IP4{cloud}}
	rules := CompileFlowRules(r, []packet.MAC{devA}, gwMAC, packet.MustParseIP4("192.168.1.1"))
	want := r.Hash()
	for i, fr := range rules {
		if fr.Cookie != want {
			t.Errorf("rule %d cookie = %d, want %d", i, fr.Cookie, want)
		}
	}
	// Removal by cookie clears them all.
	tbl := flowtable.New()
	for _, fr := range rules {
		tbl.Add(fr)
	}
	if n := tbl.RemoveByCookie(want); n != len(rules) {
		t.Errorf("RemoveByCookie removed %d, want %d", n, len(rules))
	}
}
