package iotssp

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/devices"
	"repro/internal/fingerprint"
	"repro/internal/ml"
)

// shardFixture is a small 2-shard bank trained once per test binary,
// with held-out probes and a spare type for enrolment tests.
type shardFixture struct {
	cfg     core.Config
	sharded *core.ShardedBank
	probes  []*fingerprint.Fingerprint
	// spareName/sparePrints is an untrained type for Enroll tests.
	spareName   string
	sparePrints []*fingerprint.Fingerprint
}

var (
	shardFixOnce sync.Once
	shardFix     *shardFixture
)

// getShardFixture trains the shared 2-shard fixture.
func getShardFixture(t *testing.T) *shardFixture {
	t.Helper()
	shardFixOnce.Do(func() {
		env := devices.DefaultEnv()
		names := []string{"Aria", "EdimaxCam", "HueBridge", "WeMoSwitch", "Withings"}
		train := make(map[string][]*fingerprint.Fingerprint)
		fix := &shardFixture{spareName: "MAXGateway"}
		for _, name := range names {
			traces, err := devices.GenerateRuns(name, env, 7, 12)
			if err != nil {
				t.Fatal(err)
			}
			var prints []*fingerprint.Fingerprint
			for _, tr := range traces {
				prints = append(prints, tr.Fingerprint())
			}
			train[name] = prints[:5]
			fix.probes = append(fix.probes, prints[5:]...)
		}
		spares, err := devices.GenerateRuns(fix.spareName, env, 5, 12)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range spares {
			fix.sparePrints = append(fix.sparePrints, tr.Fingerprint())
		}
		fix.cfg = core.Default()
		fix.cfg.Forest = ml.ForestConfig{Trees: 15}
		fix.cfg.Seed = 5
		sharded, err := core.TrainSharded(fix.cfg, 2, train)
		if err != nil {
			t.Fatal(err)
		}
		fix.sharded = sharded
		shardFix = fix
	})
	if shardFix == nil {
		t.Fatal("shard fixture failed to build")
	}
	return shardFix
}

// freshShardedBank retrains an identical 2-shard bank (same seed, same
// partition) whose shards can be mutated or served without touching the
// shared fixture.
func freshShardedBank(t *testing.T) *core.ShardedBank {
	t.Helper()
	fix := getShardFixture(t)
	env := devices.DefaultEnv()
	train := make(map[string][]*fingerprint.Fingerprint)
	for _, name := range fix.sharded.Types() {
		traces, err := devices.GenerateRuns(name, env, 7, 12)
		if err != nil {
			t.Fatal(err)
		}
		var prints []*fingerprint.Fingerprint
		for _, tr := range traces {
			prints = append(prints, tr.Fingerprint())
		}
		train[name] = prints[:5]
	}
	sharded, err := core.TrainSharded(fix.cfg, 2, train)
	if err != nil {
		t.Fatal(err)
	}
	return sharded
}

// startShardReplica serves bank as a restartable shard backend.
func startShardReplica(t *testing.T, bank *core.Bank) *Replica {
	t.Helper()
	r := NewShardReplica(bank, ServerConfig{})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestRemoteShardMirrorsLocalShard(t *testing.T) {
	fix := getShardFixture(t)
	local := fix.sharded.Shard(1).(*core.Bank)
	replica := startShardReplica(t, local)
	remote := NewRemoteShard(replica.Addr(), RemoteShardConfig{Seed: 7})
	defer remote.Close()

	if got, want := remote.Types(), local.Types(); !reflect.DeepEqual(got, want) {
		t.Fatalf("remote Types = %v, want %v", got, want)
	}
	if got, want := remote.Version(), local.Version(); got != want {
		t.Fatalf("remote Version = %d, want %d", got, want)
	}
	gotAccepts := remote.ClassifyBatch(fix.probes, 0)
	wantAccepts := local.ClassifyBatch(fix.probes, 0)
	if !reflect.DeepEqual(gotAccepts, wantAccepts) {
		t.Fatalf("remote ClassifyBatch = %v, want %v", gotAccepts, wantAccepts)
	}
	types := local.Types()
	for i, fp := range fix.probes {
		gotBest, gotScores := remote.Discriminate(fp, types)
		wantBest, wantScores := local.Discriminate(fp, types)
		if gotBest != wantBest || !reflect.DeepEqual(gotScores, wantScores) {
			t.Fatalf("probe %d: remote Discriminate = (%q, %v), want (%q, %v)",
				i, gotBest, gotScores, wantBest, wantScores)
		}
	}
	if st := remote.Counters(); st.Failures != 0 || st.Transport.Dials == 0 {
		t.Errorf("remote shard stats: %+v", st)
	}
}

func TestMixedShardedBankBitEqualToLocal(t *testing.T) {
	fix := getShardFixture(t)
	served := freshShardedBank(t)
	replica := startShardReplica(t, served.Shard(1).(*core.Bank))
	remote := NewRemoteShard(replica.Addr(), RemoteShardConfig{Seed: 9})
	defer remote.Close()

	mixed, err := core.NewShardedBankFrom(fix.cfg, []core.Shard{served.Shard(0), remote})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mixed.Types(), fix.sharded.Types(); !reflect.DeepEqual(got, want) {
		t.Fatalf("mixed bank type order %v, want %v", got, want)
	}

	wantRes := fix.sharded.IdentifyBatch(fix.probes, 0)
	gotRes := mixed.IdentifyBatch(fix.probes, 0)
	if !reflect.DeepEqual(gotRes, wantRes) {
		t.Fatalf("mixed bank verdicts differ from all-local:\n got %+v\nwant %+v", gotRes, wantRes)
	}
	for i, fp := range fix.probes {
		if got, want := mixed.Identify(fp), fix.sharded.Identify(fp); !reflect.DeepEqual(got, want) {
			t.Fatalf("probe %d: mixed Identify = %+v, want %+v", i, got, want)
		}
	}
}

func TestRemoteShardEnrollBumpsVersion(t *testing.T) {
	fix := getShardFixture(t)
	served := freshShardedBank(t)
	local := served.Shard(1).(*core.Bank)
	replica := startShardReplica(t, local)
	remote := NewRemoteShard(replica.Addr(), RemoteShardConfig{Seed: 13})
	defer remote.Close()

	before := remote.Types()
	v0 := local.Version()
	if err := remote.Enroll(fix.spareName, fix.sparePrints); err != nil {
		t.Fatalf("remote Enroll: %v", err)
	}
	if got := remote.Version(); got != v0+1 {
		t.Fatalf("cached version after enroll = %d, want %d", got, v0+1)
	}
	after := remote.Types()
	if len(after) != len(before)+1 || after[len(after)-1] != fix.spareName {
		t.Fatalf("types after enroll = %v (before %v)", after, before)
	}
	// Duplicate enrolment must surface the shard's error, not retry
	// forever.
	start := time.Now()
	if err := remote.Enroll(fix.spareName, fix.sparePrints); err == nil {
		t.Fatal("duplicate remote enroll succeeded")
	} else if !strings.Contains(err.Error(), "already enrolled") {
		t.Fatalf("duplicate enroll error = %v", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatalf("non-retryable enroll error took %s (retried?)", time.Since(start))
	}
}

func TestRemoteShardSurvivesShardRestart(t *testing.T) {
	fix := getShardFixture(t)
	served := freshShardedBank(t)
	local := served.Shard(0).(*core.Bank)
	replica := startShardReplica(t, local)
	remote := NewRemoteShard(replica.Addr(), RemoteShardConfig{
		Seed:         17,
		RetryBackoff: 2 * time.Millisecond,
		MaxBackoff:   20 * time.Millisecond,
	})
	defer remote.Close()

	want := local.ClassifyBatch(fix.probes, 0)
	if got := remote.ClassifyBatch(fix.probes, 0); !reflect.DeepEqual(got, want) {
		t.Fatal("pre-restart classify mismatch")
	}

	if err := replica.Stop(); err != nil {
		t.Fatal(err)
	}
	// While the shard is down, kick off a classify that must ride the
	// retry loop across the revival.
	type res struct{ accepts [][]string }
	done := make(chan res, 1)
	go func() {
		done <- res{accepts: remote.ClassifyBatch(fix.probes, 0)}
	}()
	time.Sleep(30 * time.Millisecond)
	if err := replica.Start(); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if !reflect.DeepEqual(r.accepts, want) {
			t.Fatalf("post-restart classify = %v, want %v", r.accepts, want)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("classify never recovered after shard restart")
	}
	if st := remote.Counters(); st.Retries == 0 || st.Transport.Dials < 2 {
		t.Errorf("restart left no retry/redial trace: %+v", st)
	}
}

func TestOldClientAgainstShardServerGetsRetryableError(t *testing.T) {
	fix := getShardFixture(t)
	replica := startShardReplica(t, freshShardedBank(t).Shard(0).(*core.Bank))

	client := NewClient(replica.Addr())
	defer client.Close()
	resp, err := client.Identify(context.Background(), "02:aa:00:00:00:01", fix.probes[0])
	if err == nil {
		t.Fatal("v1 identify against a shard server succeeded")
	}
	if !resp.Retryable {
		t.Fatalf("v1 identify refusal not retryable: %+v (err %v)", resp, err)
	}
	if !strings.Contains(resp.Error, "shard") {
		t.Fatalf("refusal does not name the mode: %q", resp.Error)
	}
	if resp.Line != 1 {
		t.Fatalf("refusal lost the line echo: %+v", resp)
	}
}

func TestRemoteShardAgainstVerdictServerFailsCleanly(t *testing.T) {
	fix := getShardFixture(t)
	svc, _ := testService(t)
	srv := NewServer(svc, ServerConfig{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close() })

	remote := NewRemoteShard(lis.Addr().String(), RemoteShardConfig{
		Seed:         19,
		MaxRetries:   2,
		RetryBackoff: time.Millisecond,
		MaxBackoff:   5 * time.Millisecond,
	})
	defer remote.Close()
	if err := remote.Enroll("Nope", fix.sparePrints); err == nil {
		t.Fatal("enroll against a verdict server succeeded")
	} else if !strings.Contains(err.Error(), "not a shard server") {
		t.Fatalf("mode mismatch not surfaced: %v", err)
	}
	if got := remote.ClassifyBatch(fix.probes[:1], 0); got[0] != nil {
		t.Fatalf("classify against verdict server returned accepts: %v", got)
	}
}

// rawLine sends one raw JSON line and decodes the first reply into a
// generic map.
func rawLine(t *testing.T, addr string, line string) map[string]any {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Write([]byte(line + "\n")); err != nil {
		t.Fatal(err)
	}
	reply, err := bufio.NewReader(conn).ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(reply, &m); err != nil {
		t.Fatalf("reply %q: %v", reply, err)
	}
	return m
}

func TestHelloNegotiationBothModes(t *testing.T) {
	getShardFixture(t)
	replica := startShardReplica(t, freshShardedBank(t).Shard(0).(*core.Bank))
	if m := rawLine(t, replica.Addr(), `{"op":"hello","v":2}`); m["mode"] != ModeShard || m["v"] != float64(ProtocolVersion) {
		t.Fatalf("shard hello = %v", m)
	}

	svc, _ := testService(t)
	srv := NewServer(svc, ServerConfig{})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close() })
	if m := rawLine(t, lis.Addr().String(), `{"op":"hello","v":2}`); m["mode"] != ModeVerdict || m["v"] != float64(ProtocolVersion) {
		t.Fatalf("verdict hello = %v", m)
	}
	// Shard verbs against the verdict endpoint fail non-retryably: the
	// client dialed the wrong kind of server.
	m := rawLine(t, lis.Addr().String(), `{"op":"classify","batch":[]}`)
	if m["error"] == nil || m["retryable"] == true {
		t.Fatalf("shard op against verdict server = %v", m)
	}
	// Malformed shard lines keep the connection alive and are not
	// retryable.
	m = rawLine(t, replica.Addr(), `{"op":"classify","batch":["%%%"]}`)
	if m["error"] == nil || m["retryable"] == true {
		t.Fatalf("corrupt classify batch = %v", m)
	}
}

// TestShardServerErrorPaths covers the malformed-request and
// mode-introspection corners of the shard protocol.
func TestShardServerErrorPaths(t *testing.T) {
	getShardFixture(t)
	bank := freshShardedBank(t).Shard(0).(*core.Bank)
	replica := startShardReplica(t, bank)
	addr := replica.Addr()

	if m := rawLine(t, addr, `{"op":"warp"}`); m["error"] == nil || m["retryable"] == true {
		t.Errorf("unknown op = %v", m)
	}
	if m := rawLine(t, addr, `{"op":"enroll","type":"","prints":[]}`); m["error"] == nil {
		t.Errorf("empty enroll type = %v", m)
	}
	if m := rawLine(t, addr, `{"op":"enroll","type":"X","prints":["%%%"]}`); m["error"] == nil {
		t.Errorf("corrupt enroll print = %v", m)
	}
	if m := rawLine(t, addr, `{"op":"discriminate","fingerprint":"%%%"}`); m["error"] == nil {
		t.Errorf("corrupt discriminate fingerprint = %v", m)
	}
	if m := rawLine(t, addr, `this is not json`); m["error"] == nil {
		t.Errorf("malformed line = %v", m)
	}
	if m := rawLine(t, addr, `{"op":"meta"}`); m["error"] != nil {
		t.Errorf("meta after malformed lines should work (connection stays alive): %v", m)
	}

	remote := NewRemoteShard(addr, RemoteShardConfig{Seed: 29})
	defer remote.Close()
	if remote.Addr() != addr {
		t.Errorf("remote Addr = %q, want %q", remote.Addr(), addr)
	}
	// Discriminate among candidates the shard does not own: scores for
	// unknown names are simply absent.
	if best, scores := remote.Discriminate(shardFix.probes[0], []string{"NotAType"}); best != "" && len(scores) != 0 {
		t.Errorf("foreign candidate discriminate = (%q, %v)", best, scores)
	}

	// Mode introspection.
	if srv := NewShardServer(bank, ServerConfig{}); srv.ShardBank() != bank {
		t.Error("ShardBank did not return the hosted shard")
	} else {
		srv.Close()
	}
	svc, _ := testService(t)
	srv := NewServer(svc, ServerConfig{})
	if srv.ShardBank() != nil {
		t.Error("verdict server claims a shard bank")
	}
	srv.Close()
}
