// Package enforce implements IoT Sentinel's mitigation layer (paper §V):
// per-device isolation levels, the enforcement-rule cache of Fig. 2, the
// trusted/untrusted network overlays of Fig. 3, and the compilation of
// enforcement rules into flow-table entries.
package enforce

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/flowtable"
	"repro/internal/packet"
)

// IsolationLevel is the confinement class assigned to a device.
type IsolationLevel int

// Isolation levels of Fig. 3.
const (
	// Strict: device may talk only to other devices in the untrusted
	// overlay; no Internet access. Assigned to unknown device-types.
	Strict IsolationLevel = iota + 1
	// Restricted: untrusted overlay plus an explicit set of permitted
	// remote endpoints (e.g. the vendor cloud). Assigned to device-types
	// with known vulnerabilities.
	Restricted
	// Trusted: any device in the trusted overlay and unrestricted
	// Internet access. Assigned to device-types with no known
	// vulnerabilities.
	Trusted
)

// String returns the level name as used in the paper.
func (l IsolationLevel) String() string {
	switch l {
	case Strict:
		return "strict"
	case Restricted:
		return "restricted"
	case Trusted:
		return "trusted"
	default:
		return fmt.Sprintf("IsolationLevel(%d)", int(l))
	}
}

// Valid reports whether l is one of the three defined levels.
func (l IsolationLevel) Valid() bool { return l >= Strict && l <= Trusted }

// Rule is one enforcement rule as in Fig. 2: the device it applies to
// (identified by MAC address, assuming static MACs), its isolation level,
// and — for Restricted — the permitted remote endpoints through which the
// device may reach its cloud service.
type Rule struct {
	DeviceMAC packet.MAC
	// DeviceType records the identified type, for operator display.
	DeviceType string
	Level      IsolationLevel
	// PermittedIPs are the remote endpoints a Restricted device may
	// contact.
	PermittedIPs []packet.IP4
}

// Hash returns the rule's storage hash (Fig. 2 shows rules stored hashed
// in the cache). It covers the MAC, level and permitted endpoints.
func (r *Rule) Hash() uint64 {
	h := fnv.New64a()
	h.Write(r.DeviceMAC[:])
	fmt.Fprintf(h, "/%d/", r.Level)
	ips := append([]packet.IP4(nil), r.PermittedIPs...)
	sort.Slice(ips, func(i, j int) bool {
		for k := 0; k < 4; k++ {
			if ips[i][k] != ips[j][k] {
				return ips[i][k] < ips[j][k]
			}
		}
		return false
	})
	for _, ip := range ips {
		h.Write(ip[:])
	}
	return h.Sum64()
}

// permits reports whether the rule permits the external destination ip.
func (r *Rule) permits(ip packet.IP4) bool {
	for _, p := range r.PermittedIPs {
		if p == ip {
			return true
		}
	}
	return false
}

// Verdict is an enforcement decision for one packet.
type Verdict struct {
	Allow bool
	// Reason is a short operator-readable explanation.
	Reason string
}

// Engine holds the enforcement-rule cache and overlay membership and
// decides, per packet, whether the traffic is permitted. Rules are stored
// in a hash table keyed by device MAC so the lookup cost stays flat as
// the cache grows (§V). All methods are safe for concurrent use.
type Engine struct {
	mu    sync.RWMutex
	rules map[packet.MAC]*Rule
	// infra marks infrastructure endpoints (the gateway itself, local
	// servers) that every overlay may reach: confinement must not cut
	// devices off from DHCP, DNS or the measurement servers.
	infra map[packet.MAC]bool
	// localSubnet distinguishes local destinations from the Internet.
	localNet packet.IP4 // /24 network address
}

// NewEngine creates an engine enforcing on the given /24 local subnet
// (e.g. 192.168.1.0).
func NewEngine(localNet packet.IP4) *Engine {
	return &Engine{
		rules:    make(map[packet.MAC]*Rule),
		infra:    make(map[packet.MAC]bool),
		localNet: localNet,
	}
}

// SetInfrastructure marks mac as an infrastructure endpoint reachable
// from both overlays.
func (e *Engine) SetInfrastructure(mac packet.MAC) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.infra[mac] = true
}

// SetRule installs or replaces the enforcement rule for a device.
func (e *Engine) SetRule(r Rule) error {
	if !r.Level.Valid() {
		return fmt.Errorf("enforce: invalid isolation level %d", r.Level)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	cp := r
	cp.PermittedIPs = append([]packet.IP4(nil), r.PermittedIPs...)
	e.rules[r.DeviceMAC] = &cp
	return nil
}

// RemoveRule drops the rule for mac (e.g. when the device leaves the
// network) and reports whether one existed.
func (e *Engine) RemoveRule(mac packet.MAC) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.rules[mac]
	delete(e.rules, mac)
	return ok
}

// RuleFor returns the rule for mac, if any.
func (e *Engine) RuleFor(mac packet.MAC) (Rule, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	r, ok := e.rules[mac]
	if !ok {
		return Rule{}, false
	}
	cp := *r
	cp.PermittedIPs = append([]packet.IP4(nil), r.PermittedIPs...)
	return cp, true
}

// Len returns the number of cached enforcement rules.
func (e *Engine) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.rules)
}

// IsLocal reports whether ip is inside the gateway's local /24 subnet
// (or a broadcast/multicast address, which never leaves the segment).
func (e *Engine) IsLocal(ip packet.IP4) bool {
	if ip.IsMulticast() || ip.IsBroadcast() || ip == packet.IP4Zero {
		return true
	}
	return ip[0] == e.localNet[0] && ip[1] == e.localNet[1] && ip[2] == e.localNet[2]
}

// levelOf returns the effective isolation level of a device: its rule's
// level, or Strict when the device has no rule yet (unknown devices are
// maximally confined).
func (e *Engine) levelOf(mac packet.MAC) (IsolationLevel, *Rule) {
	if r, ok := e.rules[mac]; ok {
		return r.Level, r
	}
	return Strict, nil
}

// overlayOf maps a level to its overlay: Trusted devices live in the
// trusted overlay, everything else in the untrusted one (Fig. 3).
func overlayOf(l IsolationLevel) string {
	if l == Trusted {
		return "trusted"
	}
	return "untrusted"
}

// DecideLocal rules on a frame between two local devices: both must live
// in the same overlay. Link-layer group traffic (broadcast/multicast) and
// frames to or from infrastructure endpoints are always permitted —
// confinement must not break ARP, DHCP or gateway services.
func (e *Engine) DecideLocal(src, dst packet.MAC) Verdict {
	if dst.IsBroadcast() || dst.IsMulticast() {
		return Verdict{Allow: true, Reason: "link-layer group traffic"}
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.infra[src] || e.infra[dst] {
		return Verdict{Allow: true, Reason: "infrastructure endpoint"}
	}
	sl, _ := e.levelOf(src)
	dl, _ := e.levelOf(dst)
	so, do := overlayOf(sl), overlayOf(dl)
	if so != do {
		return Verdict{Allow: false, Reason: fmt.Sprintf("cross-overlay traffic (%s -> %s)", so, do)}
	}
	return Verdict{Allow: true, Reason: "same overlay (" + so + ")"}
}

// DecideExternal rules on a packet from a local device to an Internet
// destination.
func (e *Engine) DecideExternal(src packet.MAC, dst packet.IP4) Verdict {
	e.mu.RLock()
	defer e.mu.RUnlock()
	sl, rule := e.levelOf(src)
	switch sl {
	case Trusted:
		return Verdict{Allow: true, Reason: "trusted: unrestricted Internet"}
	case Restricted:
		if rule != nil && rule.permits(dst) {
			return Verdict{Allow: true, Reason: "restricted: permitted endpoint"}
		}
		return Verdict{Allow: false, Reason: "restricted: endpoint not permitted"}
	default:
		return Verdict{Allow: false, Reason: "strict: no Internet access"}
	}
}

// DecideInbound rules on a packet arriving from the Internet for a local
// device: mirrored semantics of DecideExternal, hindering adversaries
// from reaching vulnerable devices.
func (e *Engine) DecideInbound(src packet.IP4, dst packet.MAC) Verdict {
	e.mu.RLock()
	defer e.mu.RUnlock()
	dl, rule := e.levelOf(dst)
	switch dl {
	case Trusted:
		return Verdict{Allow: true, Reason: "trusted: unrestricted Internet"}
	case Restricted:
		if rule != nil && rule.permits(src) {
			return Verdict{Allow: true, Reason: "restricted: permitted endpoint"}
		}
		return Verdict{Allow: false, Reason: "restricted: endpoint not permitted"}
	default:
		return Verdict{Allow: false, Reason: "strict: no Internet access"}
	}
}

// DecidePacket is the full per-packet enforcement decision used by the
// gateway datapath: outbound WAN traffic is judged by the source device's
// rule, inbound WAN traffic by the destination device's rule, and local
// traffic by overlay membership.
func (e *Engine) DecidePacket(p *packet.Packet) Verdict {
	if p.IPv4 != nil {
		switch {
		case !e.IsLocal(p.IPv4.Dst):
			return e.DecideExternal(p.Eth.Src, p.IPv4.Dst)
		case !e.IsLocal(p.IPv4.Src) && p.IPv4.Src != packet.IP4Zero:
			return e.DecideInbound(p.IPv4.Src, p.Eth.Dst)
		}
	}
	return e.DecideLocal(p.Eth.Src, p.Eth.Dst)
}

// Rules returns a copy of all cached enforcement rules, sorted by device
// MAC for deterministic iteration.
func (e *Engine) Rules() []Rule {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]Rule, 0, len(e.rules))
	for _, r := range e.rules {
		cp := *r
		cp.PermittedIPs = append([]packet.IP4(nil), r.PermittedIPs...)
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool {
		for k := 0; k < 6; k++ {
			if out[i].DeviceMAC[k] != out[j].DeviceMAC[k] {
				return out[i].DeviceMAC[k] < out[j].DeviceMAC[k]
			}
		}
		return false
	})
	return out
}

// OverlayPeers returns the MACs of rule-holding devices living in the
// same overlay as level, excluding self. Used when compiling flow rules.
func (e *Engine) OverlayPeers(level IsolationLevel, self packet.MAC) []packet.MAC {
	e.mu.RLock()
	defer e.mu.RUnlock()
	want := overlayOf(level)
	var out []packet.MAC
	for mac, r := range e.rules {
		if mac == self {
			continue
		}
		if overlayOf(r.Level) == want {
			out = append(out, mac)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		for k := 0; k < 6; k++ {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// MemoryFootprint estimates the bytes held by the rule cache: the hash
// map buckets plus per-rule storage including permitted endpoint lists.
// Used by the Fig. 6c memory experiment.
func (e *Engine) MemoryFootprint() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	const (
		entryOverhead = 48 // map bucket share + pointer
		ruleBase      = 64 // struct fields
	)
	total := 0
	for _, r := range e.rules {
		total += entryOverhead + ruleBase + len(r.DeviceType) + 4*len(r.PermittedIPs)
	}
	return total
}

// CompileFlowRules translates an enforcement rule into OVS flow-table
// entries, as the custom Floodlight module does in the paper. The overlay
// peers are the other local devices in the same overlay at compile time;
// SDN controllers recompile when membership changes. Traffic routed
// *through* the gateway toward the WAN carries the gateway's MAC too, so
// the control-traffic exemptions are scoped to ARP and to the gateway's
// own IP — never to the gateway MAC alone.
func CompileFlowRules(r Rule, overlayPeers []packet.MAC, gatewayMAC packet.MAC, gatewayIP packet.IP4) []flowtable.Rule {
	cookie := r.Hash()
	var out []flowtable.Rule

	// Always allow link-local control traffic (ARP to the gateway, DHCP/
	// DNS/NTP served by the gateway itself) and broadcast/multicast
	// chatter so confinement does not brick the device.
	out = append(out,
		flowtable.Rule{
			Priority: 400,
			Match: flowtable.Match{
				EthSrc:    flowtable.MACPtr(r.DeviceMAC),
				EthDst:    flowtable.MACPtr(gatewayMAC),
				EtherType: etherTypePtr(packet.EtherTypeARP),
			},
			Action: flowtable.ActionForward,
			Cookie: cookie,
		},
		flowtable.Rule{
			Priority: 400,
			Match: flowtable.Match{
				EthSrc: flowtable.MACPtr(r.DeviceMAC),
				EthDst: flowtable.MACPtr(gatewayMAC),
				IPDst:  flowtable.IPPtr(gatewayIP),
			},
			Action: flowtable.ActionForward,
			Cookie: cookie,
		},
		flowtable.Rule{
			Priority: 350,
			Match:    flowtable.Match{EthSrc: flowtable.MACPtr(r.DeviceMAC), EthDstGroup: flowtable.BoolPtr(true)},
			Action:   flowtable.ActionForward,
			Cookie:   cookie,
		},
	)

	// Overlay peers, both directions.
	for _, peer := range overlayPeers {
		out = append(out,
			flowtable.Rule{
				Priority: 300,
				Match:    flowtable.Match{EthSrc: flowtable.MACPtr(r.DeviceMAC), EthDst: flowtable.MACPtr(peer)},
				Action:   flowtable.ActionForward,
				Cookie:   cookie,
			},
			flowtable.Rule{
				Priority: 300,
				Match:    flowtable.Match{EthSrc: flowtable.MACPtr(peer), EthDst: flowtable.MACPtr(r.DeviceMAC)},
				Action:   flowtable.ActionForward,
				Cookie:   cookie,
			},
		)
	}

	// Permitted cloud endpoints for Restricted devices.
	if r.Level == Restricted {
		for _, ip := range r.PermittedIPs {
			out = append(out, flowtable.Rule{
				Priority: 200,
				Match:    flowtable.Match{EthSrc: flowtable.MACPtr(r.DeviceMAC), IPDst: flowtable.IPPtr(ip)},
				Action:   flowtable.ActionForward,
				Cookie:   cookie,
			})
		}
	}

	// Trusted devices get a blanket forward; everyone else a final drop.
	last := flowtable.Rule{
		Priority: 100,
		Match:    flowtable.Match{EthSrc: flowtable.MACPtr(r.DeviceMAC)},
		Action:   flowtable.ActionDrop,
		Cookie:   cookie,
	}
	if r.Level == Trusted {
		last.Action = flowtable.ActionForward
	}
	out = append(out, last)
	return out
}

// etherTypePtr returns a pointer to t, for Match literals.
func etherTypePtr(t packet.EtherType) *packet.EtherType { return &t }
