package dataplane

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/devices"
	"repro/internal/features"
	"repro/internal/fingerprint"
	"repro/internal/iotssp"
	"repro/internal/packet"
	"repro/internal/pcap"
	"repro/internal/sniff"
)

// buildWorkload serializes `runs` setup runs of the first `types`
// device profiles, gives every (type, run) instance a distinct MAC, and
// interleaves all frames by timestamp — a busy medium with many devices
// joining at once.
func buildWorkload(t testing.TB, types, runs int) []Frame {
	t.Helper()
	env := devices.DefaultEnv()
	names := devices.Names()
	if types > len(names) {
		types = len(names)
	}
	var frames []Frame
	for ti, name := range names[:types] {
		traces, err := devices.GenerateRuns(name, env, 7, runs)
		if err != nil {
			t.Fatalf("generating %s: %v", name, err)
		}
		for run, tr := range traces {
			mac := packet.MAC{0x02, 0x77, byte(ti), byte(run), 0x00, 0x01}
			for _, p := range tr.Packets {
				wire, err := p.Serialize()
				if err != nil {
					t.Fatalf("serializing %s packet: %v", name, err)
				}
				copy(wire[6:12], mac[:])
				frames = append(frames, Frame{TS: p.Timestamp, Data: wire})
			}
		}
	}
	sort.SliceStable(frames, func(i, j int) bool { return frames[i].TS.Before(frames[j].TS) })
	return frames
}

// framesToPcap writes the frame stream as an in-memory libpcap file.
func framesToPcap(t testing.TB, frames []Frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, pcap.WithNanosecondResolution())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := w.WritePacket(f.TS, f.Data); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// serialCaptures is the serial-monitor baseline over the same stream.
func serialCaptures(t testing.TB, frames []Frame) []sniff.Capture {
	t.Helper()
	caps, err := sniff.ReadPcap(bytes.NewReader(framesToPcap(t, frames)), sniff.GatewayConfig())
	if err != nil {
		t.Fatal(err)
	}
	return caps
}

// TestPipelineMatchesSerialMonitor is the dataplane's core guarantee:
// for any frame stream, the concurrent pipeline produces exactly the
// captures the serial sniff.Monitor produces — same devices, same
// packet counts, bit-equal fingerprints.
func TestPipelineMatchesSerialMonitor(t *testing.T) {
	frames := buildWorkload(t, 12, 3)
	want := serialCaptures(t, frames)
	if len(want) == 0 {
		t.Fatal("workload produced no serial captures")
	}
	wantByMAC := make(map[packet.MAC]sniff.Capture, len(want))
	for _, c := range want {
		wantByMAC[c.MAC] = c
	}

	for _, workers := range []int{1, 2, 4} {
		res, err := Run(Config{Workers: workers, BatchFrames: 32}, NewFrameSource(frames))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res.Captures) != len(want) {
			t.Fatalf("workers=%d: %d captures, serial produced %d", workers, len(res.Captures), len(want))
		}
		for _, c := range res.Captures {
			ref, ok := wantByMAC[c.MAC]
			if !ok {
				t.Fatalf("workers=%d: capture for %s absent from serial baseline", workers, c.MAC)
			}
			if c.Packets != len(ref.Packets) {
				t.Errorf("workers=%d %s: %d packets, serial %d", workers, c.MAC, c.Packets, len(ref.Packets))
			}
			if !c.Fingerprint.Equal(ref.Fingerprint()) {
				t.Errorf("workers=%d %s: fingerprint diverged from serial monitor", workers, c.MAC)
			}
		}
		if res.Stats.Frames != uint64(len(frames)) {
			t.Errorf("workers=%d: stats counted %d frames, want %d", workers, res.Stats.Frames, len(frames))
		}
		if res.Stats.Captures != uint64(len(want)) {
			t.Errorf("workers=%d: stats counted %d captures, want %d", workers, res.Stats.Captures, len(want))
		}
	}
}

// TestPipelineDeterministicOrder asserts the capture order is stable
// across runs and worker counts (completion frame, then first seen).
func TestPipelineDeterministicOrder(t *testing.T) {
	frames := buildWorkload(t, 8, 2)
	var ref []packet.MAC
	for run := 0; run < 3; run++ {
		res, err := Run(Config{Workers: 1 + run, BatchFrames: 16}, NewFrameSource(frames))
		if err != nil {
			t.Fatal(err)
		}
		order := make([]packet.MAC, len(res.Captures))
		for i, c := range res.Captures {
			order[i] = c.MAC
		}
		if run == 0 {
			ref = order
			continue
		}
		if len(order) != len(ref) {
			t.Fatalf("run %d: %d captures, want %d", run, len(order), len(ref))
		}
		for i := range order {
			if order[i] != ref[i] {
				t.Fatalf("run %d: capture %d is %s, want %s", run, i, order[i], ref[i])
			}
		}
	}
}

// TestPipelinePcapSource runs the pipeline straight off pcap bytes.
func TestPipelinePcapSource(t *testing.T) {
	frames := buildWorkload(t, 6, 2)
	want := serialCaptures(t, frames)
	src, err := NewPcapSource(bytes.NewReader(framesToPcap(t, frames)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{Workers: 4}, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Captures) != len(want) {
		t.Fatalf("%d captures, serial produced %d", len(res.Captures), len(want))
	}
}

// TestPipelineIgnoreMACs verifies the reader-side infrastructure filter.
func TestPipelineIgnoreMACs(t *testing.T) {
	frames := buildWorkload(t, 4, 1)
	drop := packet.MAC{0x02, 0x77, 0x00, 0x00, 0x00, 0x01}
	res, err := Run(Config{
		Workers:    2,
		IgnoreMACs: map[packet.MAC]bool{drop: true},
	}, NewFrameSource(frames))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Ignored == 0 {
		t.Fatal("no frames ignored")
	}
	for _, c := range res.Captures {
		if c.MAC == drop {
			t.Fatalf("ignored MAC %s produced a capture", drop)
		}
	}
}

// errSource fails after a few frames.
type errSource struct {
	n   int
	err error
}

func (s *errSource) Next() ([]byte, time.Time, error) {
	if s.n == 0 {
		return nil, time.Time{}, s.err
	}
	s.n--
	return make([]byte, 60), time.Unix(0, int64(s.n)), nil
}

// TestPipelineSourceError asserts a mid-stream source error aborts the
// run cleanly (no hang, no partial result).
func TestPipelineSourceError(t *testing.T) {
	boom := errors.New("boom")
	res, err := Run(Config{Workers: 2}, &errSource{n: 500, err: boom})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if res != nil {
		t.Fatal("got a result alongside the error")
	}
}

// TestWorkerEviction floods the pipeline with single-frame MAC churn
// and asserts worker state stays bounded — the dataplane mirror of the
// sniff.Monitor regression.
func TestWorkerEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	base := time.Unix(1700000000, 0)
	env := devices.DefaultEnv()
	tr, err := devices.GenerateRuns(devices.Names()[0], env, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := tr[0].Packets[0].Serialize()
	if err != nil {
		t.Fatal(err)
	}
	const churn = 6000
	frames := make([]Frame, 0, churn)
	for i := 0; i < churn; i++ {
		f := append([]byte(nil), wire...)
		f[6], f[7] = 0x02, 0xee
		f[8], f[9], f[10], f[11] = byte(rng.Intn(256)), byte(rng.Intn(256)), byte(i>>8), byte(i)
		frames = append(frames, Frame{TS: base.Add(time.Duration(i) * time.Millisecond), Data: f})
	}
	limits := sniff.Limits{MaxActive: 64, MaxFinished: 128}
	res, err := Run(Config{Workers: 2, Limits: limits}, NewFrameSource(frames))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.EvictedActive == 0 {
		t.Fatal("active-state eviction never fired under MAC churn")
	}
	// Every evicted single-packet device still produced its capture.
	if res.Stats.Captures != churn {
		t.Fatalf("%d captures, want %d (evictions must complete, not drop)", res.Stats.Captures, churn)
	}
	if got := res.Stats.EvictedFinished; got == 0 {
		t.Fatal("finished-set eviction never fired under MAC churn")
	}
}

// TestDecodeExtractZeroAlloc is the allocation gate on the steady-state
// hot path: decoding a frame through a warmed DecodeBuf and extracting
// its features must not allocate.
func TestDecodeExtractZeroAlloc(t *testing.T) {
	frames := buildWorkload(t, 6, 1)
	var dec packet.DecodeBuf
	var ex features.Extractor
	warm := func() {
		for _, f := range frames {
			p, err := dec.Decode(f.Data, f.TS)
			if err != nil {
				continue
			}
			ex.Extract(p)
		}
	}
	warm() // populate arenas and the dst-IP counter map
	var sink features.Vector
	allocs := testing.AllocsPerRun(10, func() {
		for _, f := range frames {
			p, err := dec.Decode(f.Data, f.TS)
			if err != nil {
				continue
			}
			sink = ex.Extract(p)
		}
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("decode+extract allocated %.1f times per run over %d frames; want 0", allocs, len(frames))
	}
}

// TestDecodeBufMatchesDecode cross-checks the reusing decoder against
// the allocating one over a real workload (the fuzz harness does the
// adversarial version).
func TestDecodeBufMatchesDecode(t *testing.T) {
	frames := buildWorkload(t, 8, 1)
	var dec packet.DecodeBuf
	var exA, exB features.Extractor
	for i, f := range frames {
		pa, errA := packet.Decode(f.Data, f.TS)
		pb, errB := dec.Decode(f.Data, f.TS)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("frame %d: Decode err=%v, DecodeBuf err=%v", i, errA, errB)
		}
		if errA != nil {
			continue
		}
		va, vb := exA.Extract(pa), exB.Extract(pb)
		if va != vb {
			t.Fatalf("frame %d: feature vectors diverge:\n  Decode:    %s\n  DecodeBuf: %s", i, va, vb)
		}
	}
}

// TestRunIdentifyBatches exercises the capture→verdict glue with a stub
// identifier and checks batching plus deterministic verdict order.
func TestRunIdentifyBatches(t *testing.T) {
	frames := buildWorkload(t, 8, 2)
	ident := &stubIdentifier{}
	verdicts, res, err := RunIdentify(context.Background(), Config{Workers: 4}, NewFrameSource(frames), ident, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != int(res.Stats.Captures) {
		t.Fatalf("%d verdicts for %d captures", len(verdicts), res.Stats.Captures)
	}
	if ident.batches == 0 {
		t.Fatal("identifier never called")
	}
	for i, v := range verdicts {
		if v.Err != nil {
			t.Fatalf("verdict %d: %v", i, v.Err)
		}
		if v.Response.MAC != v.Capture.MAC.String() {
			t.Fatalf("verdict %d: response MAC %s for capture %s", i, v.Response.MAC, v.Capture.MAC)
		}
	}
	// Deterministic order: matches the plain pipeline's capture order.
	ref, err := Run(Config{Workers: 1}, NewFrameSource(frames))
	if err != nil {
		t.Fatal(err)
	}
	for i := range verdicts {
		if verdicts[i].Capture.MAC != ref.Captures[i].MAC {
			t.Fatalf("verdict %d is %s, pipeline capture order says %s", i, verdicts[i].Capture.MAC, ref.Captures[i].MAC)
		}
	}
}

// stubIdentifier echoes each MAC back as a known-device response.
type stubIdentifier struct {
	batches int
}

func (s *stubIdentifier) IdentifyBatch(_ context.Context, macs []string, fps []*fingerprint.Fingerprint) ([]iotssp.Response, []error) {
	s.batches++
	resps := make([]iotssp.Response, len(macs))
	errs := make([]error, len(macs))
	for i, mac := range macs {
		resps[i] = iotssp.Response{MAC: mac, Known: true, DeviceType: "stub"}
	}
	_ = fps
	return resps, errs
}
