package ml

// SampleMatrix is a dense row-major batch of fixed-size samples: row s
// occupies data[s*dim : (s+1)*dim]. The fused classification engine
// streams it through every forest of a ForestSet, and batch callers
// reuse one matrix across flushes (Reset keeps the backing arrays), so
// steady-state classification allocates nothing per sample — the
// pointer-chased [][]float64 form cost one slice header allocation per
// fingerprint per call.
//
// When the quantized serving layout is active the engine reads the
// float32 mirror instead; it is built lazily by mirror() from the
// float64 rows, so comparisons run in single precision exactly as the
// per-forest quantized path does.
type SampleMatrix struct {
	dim    int
	rows   int
	data   []float64
	data32 []float32
}

// Reset sizes the matrix to rows×dim, reusing the backing arrays when
// they are large enough. Row contents are undefined until filled (the
// fill paths overwrite every cell, padding included). The float32
// mirror is invalidated; it rebuilds on the next quantized classify.
func (m *SampleMatrix) Reset(rows, dim int) {
	m.rows, m.dim = rows, dim
	need := rows * dim
	if cap(m.data) < need {
		m.data = make([]float64, need)
	} else {
		m.data = m.data[:need]
	}
	m.data32 = m.data32[:0]
}

// Rows returns the number of samples.
func (m *SampleMatrix) Rows() int { return m.rows }

// Dim returns the per-sample dimensionality.
func (m *SampleMatrix) Dim() int { return m.dim }

// Row returns sample s's backing slice for in-place filling.
func (m *SampleMatrix) Row(s int) []float64 {
	return m.data[s*m.dim : (s+1)*m.dim]
}

// SetRow copies x into row s, zero-padding when x is shorter than the
// matrix dimensionality.
func (m *SampleMatrix) SetRow(s int, x []float64) {
	row := m.Row(s)
	n := copy(row, x)
	for i := n; i < len(row); i++ {
		row[i] = 0
	}
}

// FillMirror builds the float32 mirror eagerly. A classify pass builds
// it on demand, but a caller sharing one matrix across concurrent
// passes (the shard scatter) must fill it up front so the passes only
// read it.
func (m *SampleMatrix) FillMirror() { m.mirror() }

// mirror returns the float32 mirror of the matrix, building it if the
// last Reset invalidated it. The conversion is the same per-element
// float32(x) the quantized traversal would perform, so classifying the
// mirror is bit-identical to classifying the float64 rows quantized.
// Callers must mirror before fanning a classify across goroutines so
// the workers only read it.
func (m *SampleMatrix) mirror() []float32 {
	need := m.rows * m.dim
	if len(m.data32) == need {
		return m.data32
	}
	if cap(m.data32) < need {
		m.data32 = make([]float32, need)
	} else {
		m.data32 = m.data32[:need]
	}
	for i, v := range m.data {
		m.data32[i] = float32(v)
	}
	return m.data32
}
