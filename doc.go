// Package repro is a from-scratch Go reproduction of "IoT SENTINEL:
// Automated Device-Type Identification for Security Enforcement in IoT"
// (Miettinen, Marchal, Hafeez, Asokan, Sadeghi, Tarkoma — ICDCS 2017).
//
// The library lives under internal/: the packet codecs, pcap I/O, the 23
// Table-I features, fingerprints F and F′, a from-scratch Random Forest,
// Damerau-Levenshtein discrimination, the two-stage identification
// pipeline (internal/core), the 27 Table-II device-behaviour profiles, a
// discrete-event network simulator, an OVS-style flow table, the
// enforcement layer, a CVE-style vulnerability repository, the IoT
// Security Service and the Security Gateway. The experiments package
// regenerates every table and figure of the paper's evaluation; the
// benchmarks in bench_test.go expose each of them to `go test -bench`.
//
// See README.md for a walkthrough, DESIGN.md for the system inventory
// and experiment index, and EXPERIMENTS.md for paper-versus-measured
// results.
package repro
