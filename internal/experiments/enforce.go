package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"repro/internal/enforce"
	"repro/internal/flowtable"
	"repro/internal/gateway"
	"repro/internal/netsim"
	"repro/internal/packet"
)

// EnforceConfig parameterizes the enforcement-plane experiments.
type EnforceConfig struct {
	// Iterations is the ping count per measured pair (paper: 15).
	Iterations int
	// Seed drives link jitter. The same seed is used for the filtering
	// and no-filtering runs so they see identical jitter streams.
	Seed int64
}

// PaperEnforceConfig matches §VI-C: 15 iterations per measured pair.
func PaperEnforceConfig() EnforceConfig { return EnforceConfig{Iterations: 15, Seed: 1} }

func (c EnforceConfig) withDefaults() EnforceConfig {
	if c.Iterations == 0 {
		c.Iterations = 15
	}
	return c
}

// testbed mirrors the lab of Fig. 4: user devices D1-D4 on WiFi, a local
// server on Ethernet, a remote server behind a WAN link, all bridged by
// the Security Gateway.
type testbed struct {
	net *netsim.Network
	gw  *gateway.Gateway
	d   map[string]*netsim.Host
}

var (
	tbGatewayMAC = packet.MustParseMAC("02:53:47:57:00:01")
	tbGatewayIP  = packet.MustParseIP4("192.168.1.1")
	tbSubnet     = packet.MustParseIP4("192.168.1.0")
	tbStart      = time.Date(2016, 3, 1, 10, 0, 0, 0, time.UTC)
)

// hostSpec calibrates the per-host link models to Table V's RTTs.
type hostSpec struct {
	name string
	mac  string
	ip   string
	link netsim.LatencyModel
}

func testbedSpecs() []hostSpec {
	return []hostSpec{
		{"D1", "02:d1:00:00:00:01", "192.168.1.11", netsim.WiFiLink(6500*time.Microsecond, 0.06)},
		{"D2", "02:d2:00:00:00:02", "192.168.1.12", netsim.WiFiLink(7500*time.Microsecond, 0.06)},
		{"D3", "02:d3:00:00:00:03", "192.168.1.13", netsim.WiFiLink(7200*time.Microsecond, 0.06)},
		{"D4", "02:d4:00:00:00:04", "192.168.1.14", netsim.WiFiLink(6200*time.Microsecond, 0.06)},
		{"Slocal", "02:0a:00:00:00:05", "192.168.1.2", netsim.EthernetLink(2500 * time.Microsecond)},
		{"Sremote", "02:0b:00:00:00:06", "52.28.100.7", netsim.WANLink(3900*time.Microsecond, 0.15)},
	}
}

// newTestbed builds the Fig. 4 network with the gateway bridging in the
// given filtering mode. Measurement hosts are trusted (they are the
// user's own devices) and marked so the monitor does not fingerprint
// them.
func newTestbed(cfg EnforceConfig, filtering bool) (*testbed, error) {
	n := netsim.New(cfg.Seed, tbStart)
	g := gateway.New(gateway.Config{
		MAC:       tbGatewayMAC,
		IP:        tbGatewayIP,
		LocalNet:  tbSubnet,
		Filtering: filtering,
	}, nil)

	tb := &testbed{net: n, gw: g, d: make(map[string]*netsim.Host)}
	for _, spec := range testbedSpecs() {
		mac := packet.MustParseMAC(spec.mac)
		ip := packet.MustParseIP4(spec.ip)
		h, err := n.AddHost(spec.name, mac, ip, spec.link)
		if err != nil {
			return nil, err
		}
		tb.d[spec.name] = h
		g.Ignore(mac)
		if err := g.Engine().SetRule(enforce.Rule{
			DeviceMAC:  mac,
			DeviceType: spec.name,
			Level:      enforce.Trusted,
		}); err != nil {
			return nil, err
		}
	}
	// The remote server is an external endpoint; trusted devices may
	// reach it because Trusted grants unrestricted Internet access.
	n.SetBridge(g.Bridge())
	return tb, nil
}

// PairLatency is one measured source/destination latency row.
type PairLatency struct {
	Src, Dst   string
	WithMean   time.Duration
	WithStd    time.Duration
	NoMean     time.Duration
	NoStd      time.Duration
	Iterations int
}

// OverheadPct returns the relative latency increase of filtering.
func (p PairLatency) OverheadPct() float64 {
	if p.NoMean == 0 {
		return 0
	}
	return 100 * (float64(p.WithMean) - float64(p.NoMean)) / float64(p.NoMean)
}

// Table5Result holds the latency matrix of Table V.
type Table5Result struct {
	Pairs []PairLatency
}

// measurePair runs the ping experiment for one src/dst pair in one
// filtering mode.
func measurePair(cfg EnforceConfig, filtering bool, src, dst string) (time.Duration, time.Duration, error) {
	tb, err := newTestbed(cfg, filtering)
	if err != nil {
		return 0, 0, err
	}
	p := netsim.NewPinger(tb.d[src], tb.d[dst], 1)
	p.Run(cfg.Iterations, 200*time.Millisecond, 56)
	tb.net.RunAll()
	if len(p.Results) != cfg.Iterations {
		return 0, 0, fmt.Errorf("experiments: %s->%s lost pings: got %d/%d (filtering=%v)",
			src, dst, len(p.Results), cfg.Iterations, filtering)
	}
	return p.Mean(), p.StdDev(), nil
}

// RunTable5 measures user-experienced latency for D1-D3 against D4, the
// local server, and the remote server, with and without filtering.
func RunTable5(cfg EnforceConfig) (*Table5Result, error) {
	cfg = cfg.withDefaults()
	res := &Table5Result{}
	for _, src := range []string{"D1", "D2", "D3"} {
		for _, dst := range []string{"D4", "Slocal", "Sremote"} {
			withMean, withStd, err := measurePair(cfg, true, src, dst)
			if err != nil {
				return nil, err
			}
			noMean, noStd, err := measurePair(cfg, false, src, dst)
			if err != nil {
				return nil, err
			}
			res.Pairs = append(res.Pairs, PairLatency{
				Src: src, Dst: dst,
				WithMean: withMean, WithStd: withStd,
				NoMean: noMean, NoStd: noStd,
				Iterations: cfg.Iterations,
			})
		}
	}
	return res, nil
}

// RenderTable5 formats the latency matrix like the paper's Table V.
func (r *Table5Result) RenderTable5() string {
	var sb strings.Builder
	sb.WriteString("Table V — Latency (ms) experienced by users\n")
	fmt.Fprintf(&sb, "%-6s %-8s %18s %18s %9s\n", "Source", "Dest", "Filtering", "No Filtering", "Δ%")
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for _, p := range r.Pairs {
		fmt.Fprintf(&sb, "%-6s %-8s %9.1f (±%4.1f) %9.1f (±%4.1f) %8.2f%%\n",
			p.Src, p.Dst, ms(p.WithMean), ms(p.WithStd), ms(p.NoMean), ms(p.NoStd), p.OverheadPct())
	}
	return sb.String()
}

// Table6Result holds the filtering overhead summary of Table VI.
type Table6Result struct {
	D1D2LatencyPct float64
	D1D3LatencyPct float64
	CPUPct         float64
	MemoryPct      float64
}

// RunTable6 measures the overhead of the filtering mechanism: the
// latency deltas of two device pairs, plus the CPU and memory cost of
// running with filtering under a moderate background load.
func RunTable6(cfg EnforceConfig) (*Table6Result, error) {
	cfg = cfg.withDefaults()
	res := &Table6Result{}

	for i, dst := range []string{"D2", "D3"} {
		withMean, _, err := measurePair(cfg, true, "D1", dst)
		if err != nil {
			return nil, err
		}
		noMean, _, err := measurePair(cfg, false, "D1", dst)
		if err != nil {
			return nil, err
		}
		pct := 100 * (float64(withMean) - float64(noMean)) / float64(noMean)
		if i == 0 {
			res.D1D2LatencyPct = pct
		} else {
			res.D1D3LatencyPct = pct
		}
	}

	// CPU: run the same background load in both modes and compare
	// utilization (baseline excluded from the delta).
	const flows = 60
	withCPU, _, err := runLoad(cfg, true, flows, 10*time.Second)
	if err != nil {
		return nil, err
	}
	noCPU, _, err := runLoad(cfg, false, flows, 10*time.Second)
	if err != nil {
		return nil, err
	}
	res.CPUPct = withCPU - noCPU

	// Memory: the paper compares total gateway memory with and without
	// the filtering mechanism in a lab of ~a hundred devices. The
	// filtering-only state is the compiled flow table on top of the rule
	// cache; the denominator is the modeled process baseline plus the
	// always-present rule cache.
	const labDevices = 100
	withMem := measureRuleMemory(labDevices, true)
	noMem := measureRuleMemory(labDevices, false)
	baseBytes := baselineMB * (1 << 20)
	res.MemoryPct = 100 * (float64(withMem) - float64(noMem)) / (baseBytes + float64(noMem))
	return res, nil
}

// RenderTable6 formats the overhead summary.
func (r *Table6Result) RenderTable6() string {
	var sb strings.Builder
	sb.WriteString("Table VI — Overhead due to filtering mechanism\n")
	fmt.Fprintf(&sb, "D1D2 Latency    %+6.2f%%   (paper: +5.84%%)\n", r.D1D2LatencyPct)
	fmt.Fprintf(&sb, "D1D3 Latency    %+6.2f%%   (paper: +0.71%%)\n", r.D1D3LatencyPct)
	fmt.Fprintf(&sb, "CPU utilization %+6.2f%%   (paper: +0.63%%)\n", r.CPUPct)
	fmt.Fprintf(&sb, "Memory usage    %+6.2f%%   (paper: +7.6%%)\n", r.MemoryPct)
	return sb.String()
}

// LoadPoint is one measurement of the load experiments (Fig. 6a, 6b).
type LoadPoint struct {
	Flows       int
	LatencyD1D2 time.Duration
	LatencyD1D3 time.Duration
	CPUPct      float64
}

// Fig6abResult holds the latency- and CPU-versus-load series.
type Fig6abResult struct {
	Filtering []LoadPoint
	Plain     []LoadPoint
}

// runLoad drives `flows` bidirectional UDP background flows (≈7 pkt/s
// each, as a hundred-device home generates) through the gateway for the
// given duration and returns the CPU utilization percentage (on the
// paper's ≈36% Raspberry Pi baseline) plus D1-D2 ping latency measured
// concurrently.
func runLoad(cfg EnforceConfig, filtering bool, flows int, dur time.Duration) (cpuPct float64, d1d2 time.Duration, err error) {
	tb, err := newTestbed(cfg, filtering)
	if err != nil {
		return 0, 0, err
	}
	n := tb.net

	// Background flows: D2 <-> D3 port pairs, 7 pkt/s each direction.
	const pktPerSec = 7
	src := tb.d["D2"]
	dst := tb.d["D3"]
	b := packet.NewBuilder(src.MAC)
	b.SetIP(src.IP)
	interval := time.Second / pktPerSec
	for f := 0; f < flows; f++ {
		sport := uint16(40000 + f)
		offset := time.Duration(f) * (interval / time.Duration(flows+1))
		for i := 0; i < int(dur/interval); i++ {
			at := tbStart.Add(offset + time.Duration(i)*interval)
			pkt := b.UDPTo(dst.MAC, dst.IP, sport, 9000, make([]byte, 120), at)
			n.Schedule(at, func() { src.Send(pkt) })
		}
	}

	// Concurrent latency probe.
	p := netsim.NewPinger(tb.d["D1"], tb.d["D2"], 1)
	p.Run(cfg.Iterations, dur/time.Duration(cfg.Iterations+1), 56)

	n.RunAll()
	elapsed := n.Now().Sub(tbStart)
	const baseline = 36.0 // Pi OS + controller idle load (paper Fig. 6b)
	return tb.gw.CPU.Utilization(elapsed, baseline), p.Mean(), nil
}

// RunFig6ab sweeps the number of concurrent flows and records latency
// (Fig. 6a) and CPU utilization (Fig. 6b) in both filtering modes.
func RunFig6ab(cfg EnforceConfig, flowCounts []int) (*Fig6abResult, error) {
	cfg = cfg.withDefaults()
	if len(flowCounts) == 0 {
		flowCounts = []int{20, 40, 60, 80, 100, 120, 140}
	}
	res := &Fig6abResult{}
	const dur = 10 * time.Second
	for _, flows := range flowCounts {
		for _, filtering := range []bool{true, false} {
			cpu, lat12, err := runLoad(cfg, filtering, flows, dur)
			if err != nil {
				return nil, err
			}
			// Second probe pair for Fig. 6a's D1-D3 series.
			tb, err := newTestbed(cfg, filtering)
			if err != nil {
				return nil, err
			}
			p13 := netsim.NewPinger(tb.d["D1"], tb.d["D3"], 2)
			p13.Run(cfg.Iterations, 200*time.Millisecond, 56)
			tb.net.RunAll()

			pt := LoadPoint{Flows: flows, LatencyD1D2: lat12, LatencyD1D3: p13.Mean(), CPUPct: cpu}
			if filtering {
				res.Filtering = append(res.Filtering, pt)
			} else {
				res.Plain = append(res.Plain, pt)
			}
		}
	}
	return res, nil
}

// RenderFig6a formats the latency-versus-flows series.
func (r *Fig6abResult) RenderFig6a() string {
	var sb strings.Builder
	sb.WriteString("Fig. 6a — Latency (ms) vs number of concurrent flows\n")
	fmt.Fprintf(&sb, "%6s %14s %14s %14s %14s\n", "flows", "D1-D2 w/filt", "D1-D2 w/o", "D1-D3 w/filt", "D1-D3 w/o")
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for i := range r.Filtering {
		f, p := r.Filtering[i], r.Plain[i]
		fmt.Fprintf(&sb, "%6d %14.1f %14.1f %14.1f %14.1f\n",
			f.Flows, ms(f.LatencyD1D2), ms(p.LatencyD1D2), ms(f.LatencyD1D3), ms(p.LatencyD1D3))
	}
	return sb.String()
}

// RenderFig6b formats the CPU-versus-flows series.
func (r *Fig6abResult) RenderFig6b() string {
	var sb strings.Builder
	sb.WriteString("Fig. 6b — CPU utilization (%) vs number of concurrent flows\n")
	fmt.Fprintf(&sb, "%6s %14s %14s\n", "flows", "with filtering", "without")
	for i := range r.Filtering {
		fmt.Fprintf(&sb, "%6d %14.1f %14.1f\n", r.Filtering[i].Flows, r.Filtering[i].CPUPct, r.Plain[i].CPUPct)
	}
	return sb.String()
}

// MemoryPoint is one measurement of Fig. 6c.
type MemoryPoint struct {
	Rules int
	// HeapBytes is the measured live-heap growth attributable to the
	// enforcement state (rule cache + compiled flow rules).
	HeapBytes uint64
	// EstimateBytes is the engine's analytic footprint estimate.
	EstimateBytes int
	// TotalMB includes the modeled process baseline (OS + OVS +
	// controller RSS) the paper's Fig. 6c implicitly contains.
	TotalMB float64
}

// Fig6cResult holds memory-versus-rules series for both modes.
type Fig6cResult struct {
	Filtering []MemoryPoint
	Plain     []MemoryPoint
}

// baselineMB is the modeled resident footprint of the gateway stack
// before any enforcement rules exist.
const baselineMB = 18.0

// measureRuleMemory builds an engine (and, with filtering, the compiled
// flow table) holding n device rules and returns the measured live-heap
// growth in bytes.
func measureRuleMemory(n int, filtering bool) uint64 {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	engine := enforce.NewEngine(tbSubnet)
	table := flowtable.New()
	for i := 0; i < n; i++ {
		mac := packet.MAC{0x02, 0xee, byte(i >> 16), byte(i >> 8), byte(i), 0x01}
		r := enforce.Rule{
			DeviceMAC:    mac,
			DeviceType:   "LoadDevice",
			Level:        enforce.Restricted,
			PermittedIPs: []packet.IP4{{52, byte(i >> 8), byte(i), 1}},
		}
		_ = engine.SetRule(r)
		if filtering {
			// The compiled OpenFlow rules are what OVS additionally
			// holds when filtering is active.
			for _, fr := range enforce.CompileFlowRules(r, nil, tbGatewayMAC, tbGatewayIP) {
				table.Add(fr)
			}
		}
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(engine)
	runtime.KeepAlive(table)
	if after.HeapAlloc < before.HeapAlloc {
		return 0
	}
	return after.HeapAlloc - before.HeapAlloc
}

// RunFig6c sweeps the enforcement-rule count and measures memory.
func RunFig6c(ruleCounts []int) *Fig6cResult {
	if len(ruleCounts) == 0 {
		ruleCounts = []int{0, 2500, 5000, 7500, 10000, 12500, 15000, 17500, 20000}
	}
	res := &Fig6cResult{}
	for _, n := range ruleCounts {
		for _, filtering := range []bool{true, false} {
			heap := measureRuleMemory(n, filtering)
			est := estimateRuleBytes(n)
			pt := MemoryPoint{
				Rules:         n,
				HeapBytes:     heap,
				EstimateBytes: est,
				TotalMB:       baselineMB + float64(heap)/(1<<20),
			}
			if filtering {
				res.Filtering = append(res.Filtering, pt)
			} else {
				res.Plain = append(res.Plain, pt)
			}
		}
	}
	return res
}

// estimateRuleBytes is the analytic per-rule footprint estimate used to
// cross-check the measured heap growth.
func estimateRuleBytes(n int) int {
	e := enforce.NewEngine(tbSubnet)
	for i := 0; i < n; i++ {
		mac := packet.MAC{0x02, 0xee, byte(i >> 16), byte(i >> 8), byte(i), 0x01}
		_ = e.SetRule(enforce.Rule{
			DeviceMAC:    mac,
			DeviceType:   "LoadDevice",
			Level:        enforce.Restricted,
			PermittedIPs: []packet.IP4{{52, byte(i >> 8), byte(i), 1}},
		})
	}
	return e.MemoryFootprint()
}

// RenderFig6c formats the memory-versus-rules series.
func (r *Fig6cResult) RenderFig6c() string {
	var sb strings.Builder
	sb.WriteString("Fig. 6c — Memory consumption (MB) vs number of enforcement rules\n")
	sb.WriteString(fmt.Sprintf("(modeled %v MB process baseline + measured live-heap growth)\n", baselineMB))
	fmt.Fprintf(&sb, "%8s %16s %16s\n", "rules", "with filtering", "without")
	for i := range r.Filtering {
		fmt.Fprintf(&sb, "%8d %16.2f %16.2f\n",
			r.Filtering[i].Rules, r.Filtering[i].TotalMB, r.Plain[i].TotalMB)
	}
	return sb.String()
}
