package lineconn

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/backoff"
)

// testMsg is the response-line shape the tests speak: a line echo plus
// a payload tag.
type testMsg struct {
	Line uint64 `json:"line"`
	Tag  string `json:"tag,omitempty"`
	Mode string `json:"mode,omitempty"`
}

func (m testMsg) CorrelationLine() uint64 { return m.Line }

// scriptedServer runs a hand-scripted JSON-lines peer. handle is called
// per connection with the connection, its 1-based request line count
// and the raw line; returning false closes the connection.
func scriptedServer(t *testing.T, handle func(conn net.Conn, line int, raw []byte) bool) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				br := bufio.NewReader(conn)
				line := 0
				for {
					raw, err := br.ReadBytes('\n')
					if err != nil {
						return
					}
					line++
					if !handle(conn, line, raw) {
						return
					}
				}
			}(conn)
		}
	}()
	return lis.Addr().String()
}

// respond writes one testMsg line.
func respond(t *testing.T, conn net.Conn, msg testMsg) {
	t.Helper()
	b, err := json.Marshal(msg)
	if err != nil {
		t.Error(err)
		return
	}
	conn.Write(append(b, '\n'))
}

func reqLine(tag string) []byte {
	return []byte(fmt.Sprintf("{\"tag\":%q}\n", tag))
}

func TestRoundTripCorrelatesOutOfOrderResponses(t *testing.T) {
	// Park three pipelined requests and answer them in reverse order:
	// every waiter must receive the response for its own line.
	var mu sync.Mutex
	var parked []int
	addr := scriptedServer(t, func(conn net.Conn, line int, raw []byte) bool {
		mu.Lock()
		defer mu.Unlock()
		parked = append(parked, line)
		if len(parked) < 3 {
			return true
		}
		for i := len(parked) - 1; i >= 0; i-- {
			respond(t, conn, testMsg{Line: uint64(parked[i]), Tag: fmt.Sprintf("for-line-%d", parked[i])})
		}
		parked = nil
		return true
	})

	c := New[testMsg](addr, Options[testMsg]{})
	defer c.Close()

	var wg sync.WaitGroup
	got := make([]testMsg, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg, err := c.RoundTrip(context.Background(), reqLine(fmt.Sprintf("req-%d", i)), 5*time.Second)
			if err != nil {
				t.Errorf("round-trip %d: %v", i, err)
				return
			}
			got[i] = msg
		}(i)
	}
	wg.Wait()
	lines := map[uint64]bool{}
	for i, msg := range got {
		if want := fmt.Sprintf("for-line-%d", msg.Line); msg.Tag != want {
			t.Errorf("round-trip %d: line %d carried %q: responses crossed wires", i, msg.Line, msg.Tag)
		}
		lines[msg.Line] = true
	}
	if len(lines) != 3 {
		t.Errorf("line numbers not distinct across callers: %v", lines)
	}
}

// TestGenerationGuardDropsStaleDeliveries is the PR 4 review finding,
// tested directly against the transport: a read pump that outlives its
// severed connection must not resolve waiters registered on the
// replacement connection, even though the line numbers collide after
// the counter reset.
func TestGenerationGuardDropsStaleDeliveries(t *testing.T) {
	c := New[testMsg]("127.0.0.1:1", Options[testMsg]{})
	defer c.Close()

	// Hand-build the replacement connection's state: generation 2 with a
	// waiter registered under line 1 (the line counter reset on redial).
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	ch := make(chan result[testMsg], 1)
	c.mu.Lock()
	c.conn = client
	c.gen = 2
	c.lines = 1
	c.waiters[1] = ch
	c.mu.Unlock()

	// A response buffered from the severed generation-1 connection
	// carries the same line number. It must be dropped — and the stale
	// pump told to exit — not delivered to the new waiter.
	if c.deliver(testMsg{Line: 1, Tag: "stale"}, 1, 0) {
		t.Error("stale-generation delivery reported the pump as current")
	}
	select {
	case res := <-ch:
		t.Fatalf("stale response resolved the replacement's waiter: %+v", res)
	default:
	}
	if st := c.counters.Snapshot(); st.DroppedCorrelations != 1 {
		t.Errorf("dropped correlations = %d, want 1", st.DroppedCorrelations)
	}

	// The current generation's delivery still lands.
	if !c.deliver(testMsg{Line: 1, Tag: "fresh"}, 2, 0) {
		t.Error("current-generation delivery reported the pump as stale")
	}
	res := <-ch
	if res.msg.Tag != "fresh" {
		t.Errorf("waiter received %+v, want the fresh response", res.msg)
	}
}

func TestPeerCloseFailsAllPendingWaiters(t *testing.T) {
	// The server swallows three pipelined requests and closes the
	// connection: every waiter must fail fast with the read error, not
	// each wait out its own deadline.
	addr := scriptedServer(t, func(conn net.Conn, line int, raw []byte) bool {
		return line < 3
	})
	c := New[testMsg](addr, Options[testMsg]{})
	defer c.Close()

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.RoundTrip(context.Background(), reqLine("x"), 30*time.Second)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("round-trip %d succeeded against a closing peer", i)
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("pending waiters failed in %s, want fast failure on sever", elapsed)
	}

	// The next round-trip redials lazily.
	if st := c.counters.Snapshot(); st.Dials != 1 {
		t.Errorf("dials = %d, want 1 before the redial", st.Dials)
	}
	c.RoundTrip(context.Background(), reqLine("y"), 100*time.Millisecond)
	if st := c.counters.Snapshot(); st.Dials < 2 || st.Reconnects < 1 {
		t.Errorf("transport never redialed: %+v", st)
	}
}

func TestResponseWithoutWaiterIsDroppedNotMisdelivered(t *testing.T) {
	// The server answers line 99 (nobody is waiting) before the real
	// response: the orphan must be dropped and counted, and the real
	// waiter must still get its own line.
	addr := scriptedServer(t, func(conn net.Conn, line int, raw []byte) bool {
		respond(t, conn, testMsg{Line: 99, Tag: "orphan"})
		respond(t, conn, testMsg{Line: uint64(line), Tag: "mine"})
		return true
	})
	c := New[testMsg](addr, Options[testMsg]{})
	defer c.Close()

	msg, err := c.RoundTrip(context.Background(), reqLine("x"), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Tag != "mine" {
		t.Errorf("round-trip received %+v, want its own line", msg)
	}
	if st := c.counters.Snapshot(); st.DroppedCorrelations != 1 {
		t.Errorf("dropped correlations = %d, want 1", st.DroppedCorrelations)
	}
}

func TestDeadlineSeversWedgedConnection(t *testing.T) {
	addr := scriptedServer(t, func(conn net.Conn, line int, raw []byte) bool {
		return true // swallow requests, never answer
	})
	c := New[testMsg](addr, Options[testMsg]{})
	defer c.Close()

	if _, err := c.RoundTrip(context.Background(), reqLine("x"), 50*time.Millisecond); err == nil {
		t.Fatal("round-trip against a mute peer succeeded")
	} else if !strings.Contains(err.Error(), "deadline") {
		t.Errorf("err = %v, want a deadline error", err)
	}
	// The sever must have dropped the connection: the next call redials.
	c.RoundTrip(context.Background(), reqLine("y"), 50*time.Millisecond)
	if st := c.counters.Snapshot(); st.Dials != 2 || st.Reconnects != 1 {
		t.Errorf("deadline did not sever the connection: %+v", st)
	}
}

func TestContextCancellationFailsRoundTrip(t *testing.T) {
	addr := scriptedServer(t, func(conn net.Conn, line int, raw []byte) bool {
		return true // never answer
	})
	c := New[testMsg](addr, Options[testMsg]{})
	defer c.Close()
	// Cancellation (not a deadline): only ctx.Done can end the wait.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if _, err := c.RoundTrip(ctx, reqLine("x"), 30*time.Second); err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %s", elapsed)
	}
}

func TestRoundTripBatchSingleBurst(t *testing.T) {
	addr := scriptedServer(t, func(conn net.Conn, line int, raw []byte) bool {
		respond(t, conn, testMsg{Line: uint64(line), Tag: fmt.Sprintf("for-line-%d", line)})
		return true
	})
	c := New[testMsg](addr, Options[testMsg]{})
	defer c.Close()

	bodies := [][]byte{reqLine("a"), reqLine("b"), reqLine("c")}
	msgs, errs := c.RoundTripBatch(context.Background(), bodies, 5*time.Second)
	for j := range bodies {
		if errs[j] != nil {
			t.Fatalf("entry %d: %v", j, errs[j])
		}
		if want := fmt.Sprintf("for-line-%d", j+1); msgs[j].Tag != want {
			t.Errorf("entry %d got %+v, want tag %q", j, msgs[j], want)
		}
	}
	st := c.counters.Snapshot()
	if st.Bursts != 1 || st.BurstRequests != 3 {
		t.Errorf("burst counters = %+v, want 1 burst of 3", st)
	}
}

func TestRoundTripBatchFailsAllOnSever(t *testing.T) {
	addr := scriptedServer(t, func(conn net.Conn, line int, raw []byte) bool {
		if line == 2 {
			respond(t, conn, testMsg{Line: uint64(line), Tag: "answered"})
		}
		return line < 3 // close after reading the whole burst
	})
	c := New[testMsg](addr, Options[testMsg]{})
	defer c.Close()

	msgs, errs := c.RoundTripBatch(context.Background(), [][]byte{reqLine("a"), reqLine("b"), reqLine("c")}, 5*time.Second)
	if errs[1] != nil || msgs[1].Tag != "answered" {
		t.Errorf("answered entry lost: msg=%+v err=%v", msgs[1], errs[1])
	}
	for _, j := range []int{0, 2} {
		if errs[j] == nil {
			t.Errorf("entry %d did not fail with the severed connection", j)
		}
	}
}

func TestHandshakeRunsAsLineOne(t *testing.T) {
	var mu sync.Mutex
	var firstLines []string
	addr := scriptedServer(t, func(conn net.Conn, line int, raw []byte) bool {
		if line == 1 {
			mu.Lock()
			firstLines = append(firstLines, strings.TrimSpace(string(raw)))
			mu.Unlock()
			respond(t, conn, testMsg{Line: 1, Mode: "shard"})
			return true
		}
		respond(t, conn, testMsg{Line: uint64(line), Tag: "ok"})
		return true
	})
	var checked []string
	c := New[testMsg](addr, Options[testMsg]{
		Hello: []byte("{\"hello\":true}\n"),
		CheckHello: func(m testMsg) error {
			checked = append(checked, m.Mode)
			return nil
		},
	})
	defer c.Close()

	msg, err := c.RoundTrip(context.Background(), reqLine("x"), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Line != 2 {
		t.Errorf("first request landed on line %d, want 2 (the handshake owns line 1)", msg.Line)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(firstLines) != 1 || firstLines[0] != `{"hello":true}` {
		t.Errorf("handshake lines seen by the peer: %q", firstLines)
	}
	if len(checked) != 1 || checked[0] != "shard" {
		t.Errorf("CheckHello saw %v", checked)
	}
}

func TestHandshakeRejectionFailsDial(t *testing.T) {
	addr := scriptedServer(t, func(conn net.Conn, line int, raw []byte) bool {
		respond(t, conn, testMsg{Line: uint64(line), Mode: "verdict"})
		return true
	})
	c := New[testMsg](addr, Options[testMsg]{
		Hello: []byte("{\"hello\":true}\n"),
		CheckHello: func(m testMsg) error {
			if m.Mode != "shard" {
				return fmt.Errorf("peer mode %q, want shard", m.Mode)
			}
			return nil
		},
	})
	defer c.Close()

	if _, err := c.RoundTrip(context.Background(), reqLine("x"), 5*time.Second); err == nil {
		t.Fatal("round-trip succeeded past a rejected handshake")
	} else if !strings.Contains(err.Error(), "want shard") {
		t.Errorf("err = %v, want the CheckHello rejection", err)
	}
}

func TestClosedConnRefusesRoundTrips(t *testing.T) {
	c := New[testMsg]("127.0.0.1:1", Options[testMsg]{})
	if c.Addr() != "127.0.0.1:1" {
		t.Errorf("Addr = %q", c.Addr())
	}
	c.Close()
	if _, err := c.RoundTrip(context.Background(), reqLine("x"), time.Second); err != ErrClosed {
		t.Errorf("RoundTrip on closed conn = %v, want ErrClosed", err)
	}
	_, errs := c.RoundTripBatch(context.Background(), [][]byte{reqLine("x")}, time.Second)
	if errs[0] != ErrClosed {
		t.Errorf("RoundTripBatch on closed conn = %v, want ErrClosed", errs[0])
	}
}

func TestCloseFailsOutstandingWaiters(t *testing.T) {
	addr := scriptedServer(t, func(conn net.Conn, line int, raw []byte) bool {
		return true // never answer
	})
	c := New[testMsg](addr, Options[testMsg]{})
	done := make(chan error, 1)
	go func() {
		_, err := c.RoundTrip(context.Background(), reqLine("x"), 30*time.Second)
		done <- err
	}()
	// Wait until the request is in flight (the connection exists).
	for i := 0; ; i++ {
		if c.counters.Snapshot().Dials > 0 {
			break
		}
		if i > 1000 {
			t.Fatal("round-trip never dialed")
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond) // let the waiter register
	c.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Errorf("outstanding waiter failed with %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close left the outstanding waiter hanging")
	}
}

func TestSharedCountersAcrossConns(t *testing.T) {
	addr := scriptedServer(t, func(conn net.Conn, line int, raw []byte) bool {
		respond(t, conn, testMsg{Line: uint64(line), Tag: "ok"})
		return true
	})
	counters := NewCounters()
	a := New[testMsg](addr, Options[testMsg]{Counters: counters})
	b := New[testMsg](addr, Options[testMsg]{Counters: counters})
	defer a.Close()
	defer b.Close()
	if _, err := a.RoundTrip(context.Background(), reqLine("a"), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := b.RoundTrip(context.Background(), reqLine("b"), 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if st := counters.Snapshot(); st.Dials != 2 {
		t.Errorf("shared counters saw %d dials, want 2", st.Dials)
	}
}

func TestRetrySleepHonorsContextAndCap(t *testing.T) {
	r := Retry{Base: 10 * time.Millisecond, Max: 40 * time.Millisecond, Jitter: backoff.NewJitter(1)}
	// A cancelled context aborts the sleep.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := r.Sleep(ctx, 1); err != context.Canceled {
		t.Errorf("Sleep on cancelled ctx = %v, want context.Canceled", err)
	}
	// Deep attempts stay bounded by the cap (1.5x jitter ceiling).
	start := time.Now()
	if err := r.Sleep(context.Background(), 30); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Errorf("capped sleep took %s", elapsed)
	}
	// Uncapped overflowing shifts fall back to Base rather than zero or
	// negative.
	r2 := Retry{Base: 10 * time.Millisecond, Jitter: backoff.NewJitter(1)}
	start = time.Now()
	if err := r2.Sleep(context.Background(), 80); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Errorf("overflowed uncapped sleep took %s", elapsed)
	}
}
