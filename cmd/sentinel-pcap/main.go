// Command sentinel-pcap inspects a libpcap capture, extracts the IoT
// Sentinel fingerprint of each device it contains, and identifies the
// device-types against a classifier bank trained on the synthetic
// corpus — the offline equivalent of what the Security Gateway does
// online.
//
// Captures flow through the internal/dataplane worker-per-core pipeline
// (streaming decode, per-device fingerprint assembly, batched
// identification through the IoTSSP service), so a multi-gigabyte
// capture is processed at in-memory pipeline speed. Output order is
// deterministic regardless of worker count: captures are reported in
// completion order (the frame that ended each device's setup phase).
//
//	sentinel-pcap -pcap dataset/HueBridge/run00.pcap
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/dataplane"
	"repro/internal/devices"
	"repro/internal/gateway"
	"repro/internal/iotssp"
	"repro/internal/ml"
	"repro/internal/packet"
	"repro/internal/sniff"
	"repro/internal/vulndb"
)

// appDetail decodes the application layer of a packet for the verbose
// listing, best-effort.
func appDetail(p *packet.Packet) string {
	if len(p.Payload) == 0 {
		return ""
	}
	http, https, dhcp, bootp, ssdp, dns, mdns, _ := p.AppProtocols()
	switch {
	case dhcp || bootp:
		if info, err := packet.ParseDHCP(p.Payload); err == nil {
			host := ""
			if info.Hostname != "" {
				host = " hostname=" + info.Hostname
			}
			return fmt.Sprintf("  [dhcp op=%d type=%d%s]", info.Op, info.MessageType, host)
		}
	case dns || mdns:
		if info, err := packet.ParseDNS(p.Payload); err == nil && len(info.Questions) > 0 {
			return fmt.Sprintf("  [dns q=%s type=%d]", info.Questions[0].Name, info.Questions[0].Type)
		}
	case ssdp:
		if info, err := packet.ParseSSDP(p.Payload); err == nil {
			return fmt.Sprintf("  [ssdp %s st=%s nt=%s]", info.Method, info.Headers["ST"], info.Headers["NT"])
		}
	case http:
		if info, err := packet.ParseHTTPRequest(p.Payload); err == nil {
			return fmt.Sprintf("  [http %s %s host=%s]", info.Method, info.Path, info.Host)
		}
	case https:
		if sni, err := packet.ParseTLSServerName(p.Payload); err == nil && sni != "" {
			return fmt.Sprintf("  [tls sni=%s]", sni)
		}
	}
	return ""
}

// verbosePackets re-reads the capture serially and groups the retained
// packets per device, for the -v per-packet listing. The dataplane
// pipeline itself never retains packets (it assembles fingerprints
// streaming), so the listing costs a second pass only when asked for.
func verbosePackets(path string) (map[packet.MAC][]*packet.Packet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	captures, err := sniff.ReadPcap(f, sniff.GatewayConfig())
	if err != nil {
		return nil, err
	}
	byMAC := make(map[packet.MAC][]*packet.Packet, len(captures))
	for _, c := range captures {
		byMAC[c.MAC] = c.Packets
	}
	return byMAC, nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sentinel-pcap:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sentinel-pcap", flag.ContinueOnError)
	var (
		pcapPath = fs.String("pcap", "", "capture file to identify (required)")
		runs     = fs.Int("runs", 20, "training captures per device-type")
		trees    = fs.Int("trees", 100, "random-forest size")
		seed     = fs.Int64("seed", 99, "training corpus seed (must differ from the capture's)")
		workers  = fs.Int("workers", 0, "pipeline workers (0 = GOMAXPROCS)")
		verbose  = fs.Bool("v", false, "print per-packet summaries")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pcapPath == "" {
		return fmt.Errorf("missing -pcap argument")
	}

	// Open the capture before paying for training, so a bad file fails
	// fast.
	f, err := os.Open(*pcapPath)
	if err != nil {
		return err
	}
	defer f.Close()
	src, err := dataplane.NewPcapSource(f)
	if err != nil {
		return err
	}

	fmt.Printf("training %d classifiers on %d runs/type (trees=%d)…\n", devices.Count(), *runs, *trees)
	ds, err := devices.GenerateDataset(devices.DefaultEnv(), *seed, *runs)
	if err != nil {
		return err
	}
	bank, err := core.Train(core.BankConfig{
		Forest: ml.ForestConfig{Trees: *trees},
		Seed:   *seed,
	}, ds)
	if err != nil {
		return err
	}
	db := vulndb.Seeded()
	ident := gateway.LocalService{Svc: iotssp.NewService(bank, iotssp.ServiceConfig{DB: db})}
	t0 := time.Now()
	verdicts, res, err := dataplane.RunIdentify(context.Background(),
		dataplane.PipelineConfig{Workers: *workers}, src, ident, 0)
	if err != nil {
		return err
	}
	dur := time.Since(t0)
	if len(verdicts) == 0 {
		return fmt.Errorf("%s contains no device setup captures", *pcapPath)
	}
	fmt.Printf("pipeline: %d frames (%.1f MB) -> %d captures in %v (%.0f pkt/s)\n",
		res.Stats.Frames, float64(res.Stats.Bytes)/1e6, res.Stats.Captures, dur.Round(time.Millisecond),
		float64(res.Stats.Frames)/dur.Seconds())

	var pktsByMAC map[packet.MAC][]*packet.Packet
	if *verbose {
		if pktsByMAC, err = verbosePackets(*pcapPath); err != nil {
			return err
		}
	}

	for _, v := range verdicts {
		c := v.Capture
		if *verbose {
			for i, pkt := range pktsByMAC[c.MAC] {
				fmt.Printf("  %3d %s %s%s\n", i, pkt.Timestamp.Format("15:04:05.000"),
					pkt.Summary(), appDetail(pkt))
			}
		}
		fmt.Printf("\ndevice %s: %d packets, fingerprint %s\n", c.MAC, c.Packets, c.Fingerprint)
		if v.Err != nil {
			fmt.Printf("  verdict: identification error: %v\n", v.Err)
			continue
		}
		if !v.Response.Known {
			fmt.Println("  verdict: UNKNOWN device-type -> isolation level strict")
			continue
		}
		assessment := db.Assess(v.Response.DeviceType)
		fmt.Printf("  identified as %s (stage: %s)\n", v.Response.DeviceType, v.Response.Stage)
		fmt.Printf("  vulnerability assessment: %d advisories -> isolation level %s\n",
			len(assessment.Vulns), v.Response.Level)
		for _, vuln := range assessment.Vulns {
			fmt.Printf("    %s (CVSS %.1f, %d): %s\n", vuln.ID, vuln.CVSS, vuln.Year, vuln.Summary)
		}
		if v.Response.NotifyUser {
			fmt.Printf("  NOTIFY USER: vulnerabilities reachable over %v cannot be filtered\n",
				v.Response.UncontrolledChannels)
		}
	}
	return nil
}
