package packet

import (
	"testing"
	"testing/quick"
)

func TestParseMAC(t *testing.T) {
	tests := []struct {
		in      string
		want    MAC
		wantErr bool
	}{
		{"13:73:74:7e:a9:c2", MAC{0x13, 0x73, 0x74, 0x7e, 0xa9, 0xc2}, false},
		{"13-73-74-7E-A9-C2", MAC{0x13, 0x73, 0x74, 0x7e, 0xa9, 0xc2}, false},
		{"ff:ff:ff:ff:ff:ff", BroadcastMAC, false},
		{"00:00:00:00:00:00", ZeroMAC, false},
		{"13:73:74:7e:a9", MAC{}, true},
		{"13:73:74:7e:a9:zz", MAC{}, true},
		{"", MAC{}, true},
	}
	for _, tt := range tests {
		got, err := ParseMAC(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseMAC(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("ParseMAC(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestMACStringRoundTrip(t *testing.T) {
	f := func(m MAC) bool {
		parsed, err := ParseMAC(m.String())
		return err == nil && parsed == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIP4StringRoundTrip(t *testing.T) {
	f := func(a IP4) bool {
		parsed, err := ParseIP4(a.String())
		return err == nil && parsed == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseIP4Errors(t *testing.T) {
	for _, in := range []string{"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d"} {
		if _, err := ParseIP4(in); err == nil {
			t.Errorf("ParseIP4(%q) succeeded, want error", in)
		}
	}
}

func TestMACPredicates(t *testing.T) {
	if !BroadcastMAC.IsBroadcast() || !BroadcastMAC.IsMulticast() {
		t.Error("broadcast MAC predicates wrong")
	}
	if ZeroMAC.IsBroadcast() || ZeroMAC.IsMulticast() {
		t.Error("zero MAC predicates wrong")
	}
	if !(MAC{0x01, 0x00, 0x5e, 0, 0, 1}).IsMulticast() {
		t.Error("IPv4 multicast MAC not detected")
	}
}

func TestIP4Predicates(t *testing.T) {
	if !IP4MDNS.IsMulticast() || !IP4SSDP.IsMulticast() {
		t.Error("multicast groups not detected")
	}
	if IP4Broadcast.IsMulticast() {
		t.Error("broadcast misclassified as multicast")
	}
	if !IP4Broadcast.IsBroadcast() {
		t.Error("broadcast not detected")
	}
	if MustParseIP4("192.168.1.1").IsMulticast() {
		t.Error("unicast misclassified as multicast")
	}
}

func TestLinkLocalIP6(t *testing.T) {
	m := MustParseMAC("13:73:74:7e:a9:c2")
	a := LinkLocalIP6(m)
	if a[0] != 0xfe || a[1] != 0x80 {
		t.Errorf("LinkLocalIP6 prefix = %x%x, want fe80", a[0], a[1])
	}
	// Modified EUI-64 flips the universal/local bit and inserts fffe.
	if a[8] != 0x13^0x02 || a[11] != 0xff || a[12] != 0xfe {
		t.Errorf("LinkLocalIP6 EUI-64 bytes wrong: %v", a)
	}
	if a[15] != 0xc2 {
		t.Errorf("LinkLocalIP6 trailing byte = %x, want c2", a[15])
	}
}

func TestSolicitedNodeIP6(t *testing.T) {
	a := LinkLocalIP6(MustParseMAC("13:73:74:7e:a9:c2"))
	s := SolicitedNodeIP6(a)
	if !s.IsMulticast() {
		t.Error("solicited-node address not multicast")
	}
	if s[13] != a[13] || s[14] != a[14] || s[15] != a[15] {
		t.Error("solicited-node address does not carry the low 24 bits")
	}
}

func TestIP6String(t *testing.T) {
	if got, want := IP6MDNS.String(), "ff02:0:0:0:0:0:0:fb"; got != want {
		t.Errorf("IP6MDNS.String() = %q, want %q", got, want)
	}
}

func TestChecksumProperties(t *testing.T) {
	// Appending the checksum of b to b yields a sum that verifies to zero.
	f := func(b []byte) bool {
		if len(b)%2 == 1 {
			b = append(b, 0)
		}
		c := Checksum(b)
		full := append(append([]byte(nil), b...), byte(c>>8), byte(c))
		return Checksum(full) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
