package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/fingerprint"
)

// shardTrainingSet builds a deterministic multi-type training set plus
// held-out probes.
func shardTrainingSet(t *testing.T, types, perType int) (map[string][]*fingerprint.Fingerprint, []*fingerprint.Fingerprint) {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	train := make(map[string][]*fingerprint.Fingerprint, types)
	var probes []*fingerprint.Fingerprint
	for i := 0; i < types; i++ {
		name := fmt.Sprintf("type-%02d", i)
		all := synthType(int64(1000+i*100), perType+2, rng)
		train[name] = all[:perType]
		probes = append(probes, all[perType:]...)
	}
	return train, probes
}

// TestShardedSingleShardMatchesBank: a one-shard ShardedBank must be
// bit-identical to a plain Bank — same accepts, same winner, same
// scores, same stage — on every probe, batched or not.
func TestShardedSingleShardMatchesBank(t *testing.T) {
	train, probes := shardTrainingSet(t, 5, 10)
	bank, err := Train(smallConfig(), train)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := TrainSharded(smallConfig(), 1, train)
	if err != nil {
		t.Fatal(err)
	}
	want := bank.IdentifyBatch(probes, 4)
	got := sharded.IdentifyBatch(probes, 4)
	for i := range probes {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Errorf("probe %d diverged:\n bank:    %+v\n sharded: %+v", i, want[i], got[i])
		}
		one := sharded.Identify(probes[i])
		if !reflect.DeepEqual(one, got[i]) {
			t.Errorf("probe %d: Identify diverged from IdentifyBatch:\n %+v\n %+v", i, one, got[i])
		}
	}
}

// TestShardedPartitionAndVersions: types spread deterministically across
// shards, the version vector tracks per-shard enrolment counts, and the
// global order is the sorted training order.
func TestShardedPartitionAndVersions(t *testing.T) {
	train, _ := shardTrainingSet(t, 7, 8)
	sb, err := TrainSharded(smallConfig(), 3, train)
	if err != nil {
		t.Fatal(err)
	}
	if sb.Shards() != 3 || sb.Len() != 7 {
		t.Fatalf("shards=%d len=%d", sb.Shards(), sb.Len())
	}
	// 7 types round-robin over 3 shards: loads 3/2/2.
	if got := sb.Versions(); !reflect.DeepEqual(got, []uint64{3, 2, 2}) {
		t.Fatalf("version vector = %v, want [3 2 2]", got)
	}
	if sb.Version() != 7 {
		t.Fatalf("total version = %d", sb.Version())
	}
	for i, name := range sb.Types() {
		s, ok := sb.ShardOf(name)
		if !ok || s != i%3 {
			t.Errorf("type %s: shard %d ok=%v, want %d", name, s, ok, i%3)
		}
	}
	// Rebuilding yields the identical partition (determinism).
	sb2, err := TrainSharded(smallConfig(), 3, train)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sb.Types(), sb2.Types()) {
		t.Errorf("type order differs across rebuilds")
	}
}

// TestShardedIdentifyAcrossShards: probes of every type identify
// correctly even though their classifiers live on different shards.
func TestShardedIdentifyAcrossShards(t *testing.T) {
	train, _ := shardTrainingSet(t, 6, 12)
	sb, err := TrainSharded(smallConfig(), 3, train)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(43))
	correct := 0
	total := 0
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("type-%02d", i)
		for _, fp := range synthType(int64(1000+i*100), 4, rng) {
			res := sb.Identify(fp)
			total++
			if res.Known && res.Type == name {
				correct++
			}
		}
	}
	// Synthetic types are well-separated; cross-shard identification
	// must not wreck accuracy.
	if correct*10 < total*8 {
		t.Errorf("cross-shard accuracy %d/%d below 80%%", correct, total)
	}
}

// TestShardedEnrollRoutesLeastLoadedAndBumpsOneVersion: Enroll lands on
// the lightest shard and bumps exactly that shard's version.
func TestShardedEnrollRoutesLeastLoadedAndBumpsOneVersion(t *testing.T) {
	train, _ := shardTrainingSet(t, 5, 8)
	sb, err := TrainSharded(smallConfig(), 3, train)
	if err != nil {
		t.Fatal(err)
	}
	before := sb.Versions() // loads 2/2/1 -> shard 2 is lightest
	rng := rand.New(rand.NewSource(47))
	prints := synthType(7777, 8, rng)
	if err := sb.Enroll("late-device", prints); err != nil {
		t.Fatal(err)
	}
	s, ok := sb.ShardOf("late-device")
	if !ok || s != 2 {
		t.Fatalf("enrolled on shard %d (ok=%v), want least-loaded shard 2", s, ok)
	}
	after := sb.Versions()
	for i := range after {
		want := before[i]
		if i == 2 {
			want++
		}
		if after[i] != want {
			t.Errorf("shard %d version %d -> %d, want %d", i, before[i], after[i], want)
		}
	}
	if types := sb.Types(); types[len(types)-1] != "late-device" {
		t.Errorf("global order does not end with the new type: %v", types)
	}
	if err := sb.Enroll("late-device", prints); err == nil {
		t.Error("duplicate enrolment accepted")
	}
}

// TestShardedEnrollRacesIdentifyBatch: concurrent enrolments and batch
// identifications must be data-race free and every identification must
// see a consistent bank (run under -race).
func TestShardedEnrollRacesIdentifyBatch(t *testing.T) {
	train, probes := shardTrainingSet(t, 4, 8)
	cfg := smallConfig()
	cfg.Forest.Trees = 10
	sb, err := TrainSharded(cfg, 2, train)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(53))
	extra := make([][]*fingerprint.Fingerprint, 4)
	for i := range extra {
		extra[i] = synthType(int64(9000+i*111), 6, rng)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, prints := range extra {
			if err := sb.Enroll(fmt.Sprintf("race-%d", i), prints); err != nil {
				t.Errorf("Enroll race-%d: %v", i, err)
			}
		}
	}()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 10; r++ {
				for _, res := range sb.IdentifyBatch(probes, 2) {
					if res.Known && res.Type == "" {
						t.Error("known result with empty type")
					}
				}
			}
		}()
	}
	wg.Wait()
	if sb.Len() != 8 {
		t.Errorf("len = %d after 4 enrolments over 4 types", sb.Len())
	}
}

// TestShardedBatchMatchesSequential: batched identification over a
// multi-shard bank equals one-at-a-time Identify.
func TestShardedBatchMatchesSequential(t *testing.T) {
	train, probes := shardTrainingSet(t, 6, 10)
	sb, err := TrainSharded(smallConfig(), 3, train)
	if err != nil {
		t.Fatal(err)
	}
	batch := sb.IdentifyBatch(probes, 4)
	for i, fp := range probes {
		if one := sb.Identify(fp); !reflect.DeepEqual(one, batch[i]) {
			t.Errorf("probe %d: sequential %+v != batch %+v", i, one, batch[i])
		}
	}
}

// TestShardedBankFromReassemblesPartition: a logical bank assembled
// from a trained bank's own shards (through the Shard interface, the
// way a mixed local/remote deployment assembles one) must reproduce the
// original global enrolment order and bit-equal verdicts.
func TestShardedBankFromReassemblesPartition(t *testing.T) {
	train, probes := shardTrainingSet(t, 7, 8)
	sb, err := TrainSharded(smallConfig(), 3, train)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]Shard, sb.Shards())
	for s := range shards {
		shards[s] = sb.Shard(s)
	}
	re, err := NewShardedBankFrom(smallConfig(), shards)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := re.Types(), sb.Types(); !reflect.DeepEqual(got, want) {
		t.Fatalf("reassembled order %v, want %v", got, want)
	}
	for name := range train {
		gs, gok := re.ShardOf(name)
		ws, wok := sb.ShardOf(name)
		if gs != ws || gok != wok {
			t.Fatalf("ShardOf(%q) = (%d,%v), want (%d,%v)", name, gs, gok, ws, wok)
		}
	}
	if got, want := re.IdentifyBatch(probes, 4), sb.IdentifyBatch(probes, 4); !reflect.DeepEqual(got, want) {
		t.Fatalf("reassembled bank verdicts diverged")
	}
	if got, want := re.Versions(), sb.Versions(); !reflect.DeepEqual(got, want) {
		t.Fatalf("versions %v, want %v", got, want)
	}

	// Duplicate ownership is rejected.
	if _, err := NewShardedBankFrom(smallConfig(), []Shard{sb.Shard(0), sb.Shard(0)}); err == nil {
		t.Fatal("bank assembled from overlapping shards")
	}
	if _, err := NewShardedBankFrom(smallConfig(), nil); err == nil {
		t.Fatal("bank assembled from zero shards")
	}
}

// opaqueShard wraps a Bank exposing only the Shard interface — the
// shape of a remote shard, which cannot count edit-distance
// computations locally.
type opaqueShard struct{ b *Bank }

func (o opaqueShard) ClassifyBatch(fps []*fingerprint.Fingerprint, workers int) [][]string {
	return o.b.ClassifyBatch(fps, workers)
}
func (o opaqueShard) Discriminate(f *fingerprint.Fingerprint, candidates []string) (string, map[string]float64) {
	return o.b.Discriminate(f, candidates)
}
func (o opaqueShard) Enroll(name string, prints []*fingerprint.Fingerprint) error {
	return o.b.Enroll(name, prints)
}
func (o opaqueShard) Remove(name string) error      { return o.b.Remove(name) }
func (o opaqueShard) Version() uint64               { return o.b.Version() }
func (o opaqueShard) Types() []string               { return o.b.Types() }
func (o opaqueShard) Snapshot() ([]byte, error)     { return o.b.Snapshot() }
func (o opaqueShard) Restore(snapshot []byte) error { return o.b.Restore(snapshot) }

// TestShardedDistanceComputationsSkipsOpaqueShards: shards that cannot
// report edit-distance counts (remote ones) contribute zero, the rest
// keep counting.
func TestShardedDistanceComputationsSkipsOpaqueShards(t *testing.T) {
	train, _ := shardTrainingSet(t, 4, 8)
	sb, err := TrainSharded(smallConfig(), 2, train)
	if err != nil {
		t.Fatal(err)
	}
	all := sb.Types()
	full := sb.DistanceComputations(all)
	if full == 0 {
		t.Fatal("local sharded bank counts no distance computations")
	}
	if got, want := len(sb.ShardTypes(0))+len(sb.ShardTypes(1)), len(all); got != want {
		t.Fatalf("shard type lists cover %d types, want %d", got, want)
	}

	mixed, err := NewShardedBankFrom(smallConfig(), []Shard{sb.Shard(0), opaqueShard{sb.Shard(1).(*Bank)}})
	if err != nil {
		t.Fatal(err)
	}
	got := mixed.DistanceComputations(all)
	want := sb.Shard(0).(*Bank).DistanceComputations(mixed.ShardTypes(0))
	if got != want {
		t.Fatalf("mixed DistanceComputations = %d, want the local shard's %d (opaque shard contributes zero)", got, want)
	}
}

// TestShardedEnrollReconcilesLostAck: when the shard already holds the
// type (the remote case of an enrolment whose ack was lost in a
// transport failure and whose retry reports "already enrolled"),
// ShardedBank.Enroll must adopt the shard's authoritative state instead
// of leaving an owned-by-nobody type that classifies but never
// discriminates.
func TestShardedEnrollReconcilesLostAck(t *testing.T) {
	train, _ := shardTrainingSet(t, 4, 8)
	sb, err := TrainSharded(smallConfig(), 2, train)
	if err != nil {
		t.Fatal(err)
	}
	extra, _ := shardTrainingSet(t, 5, 8)
	name := "type-04"
	prints := extra[name]

	// The enrolment "landed" on the least-loaded shard behind the
	// logical bank's back — exactly what a lost enroll ack looks like.
	target := 4 % sb.Shards() // least-loaded routing for the 5th type
	if err := sb.Shard(target).(*Bank).Enroll(name, prints); err != nil {
		t.Fatal(err)
	}

	if err := sb.Enroll(name, prints); err != nil {
		t.Fatalf("Enroll after lost ack = %v, want reconciliation with the shard", err)
	}
	if s, ok := sb.ShardOf(name); !ok || s != target {
		t.Fatalf("ShardOf(%q) = (%d, %v), want (%d, true)", name, s, ok, target)
	}
	if got := sb.Types(); got[len(got)-1] != name {
		t.Fatalf("global order %v does not end with reconciled %q", got, name)
	}
	// A second logical enrolment is still a duplicate.
	if err := sb.Enroll(name, prints); err == nil {
		t.Fatal("duplicate enrolment accepted after reconciliation")
	}
}
