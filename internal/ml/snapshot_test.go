package ml

import (
	"bytes"
	"math/rand"
	"testing"
)

// intDataset builds a two-class dataset over small integer features —
// the shape fingerprint feature vectors have — so CART thresholds are
// midpoints of small integers and the float32 layout is exact.
func intDataset(n int, rng *rand.Rand) *Dataset {
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		a := float64(rng.Intn(8))
		b := float64(rng.Intn(8))
		c := float64(rng.Intn(1500))
		X[i] = []float64{a, b, c}
		if a >= 4 && c > 700 {
			y[i] = 1
		}
	}
	ds, err := NewDataset(X, y)
	if err != nil {
		panic(err)
	}
	return ds
}

func trainedForest(t testing.TB, ds *Dataset, cfg ForestConfig) *Forest {
	t.Helper()
	f, err := NewForest(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestForestSnapshotRoundTrip holds the codec to exactness: a decoded
// forest must predict bit-identically to the one that was encoded, and
// re-encoding it must reproduce the same bytes.
func TestForestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ds := intDataset(400, rng)
	forest := trainedForest(t, ds, ForestConfig{Trees: 30, Seed: 5})

	snap := AppendForest(nil, forest)
	got, rest, err := DecodeForest(snap, 3, FlatConfig{})
	if err != nil {
		t.Fatalf("DecodeForest: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("DecodeForest left %d bytes, want 0", len(rest))
	}
	for trial := 0; trial < 200; trial++ {
		x := []float64{float64(rng.Intn(8)), float64(rng.Intn(8)), float64(rng.Intn(1500))}
		if a, b := forest.PredictProb(x), got.PredictProb(x); a != b {
			t.Fatalf("restored forest PredictProb(%v) = %v, original %v", x, b, a)
		}
	}
	if again := AppendForest(nil, got); !bytes.Equal(snap, again) {
		t.Fatalf("re-encoding the restored forest changed the bytes (%d vs %d)", len(again), len(snap))
	}
}

// TestForestSnapshotSection checks the length-prefixed framing: a
// section followed by trailing payload hands the payload back.
func TestForestSnapshotSection(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	forest := trainedForest(t, intDataset(200, rng), ForestConfig{Trees: 10, Seed: 6})
	tail := []byte("next-section")
	snap := append(AppendForest(nil, forest), tail...)
	_, rest, err := DecodeForest(snap, 3, FlatConfig{})
	if err != nil {
		t.Fatalf("DecodeForest: %v", err)
	}
	if !bytes.Equal(rest, tail) {
		t.Fatalf("rest = %q, want %q", rest, tail)
	}
}

// TestDecodeForestRejectsCorrupt truncates and flips the encoding at
// every offset: each mutation must produce an error or a decodable
// forest, never a panic or a hang (the traversal-termination invariant).
func TestDecodeForestRejectsCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	forest := trainedForest(t, intDataset(150, rng), ForestConfig{Trees: 4, Seed: 7})
	snap := AppendForest(nil, forest)

	for cut := 0; cut < len(snap); cut++ {
		if _, _, err := DecodeForest(snap[:cut], 3, FlatConfig{}); err == nil {
			t.Fatalf("truncation at %d of %d decoded cleanly", cut, len(snap))
		}
	}
	for i := range snap {
		mutated := append([]byte(nil), snap...)
		mutated[i] ^= 0x41
		f, _, err := DecodeForest(mutated, 3, FlatConfig{})
		if err != nil {
			continue
		}
		// A surviving decode must still be traversable: every prediction
		// terminates because children sit strictly after their parent.
		f.PredictProb([]float64{1, 2, 3})
	}
}

// TestQuantizedExactOnIntegerFeatures: on integer-valued features (the
// fingerprint case) CART thresholds are midpoints of small integers,
// exactly representable in float32 — the quantized layout must vote
// identically to the exact one.
func TestQuantizedExactOnIntegerFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	ds := intDataset(500, rng)
	exact := trainedForest(t, ds, ForestConfig{Trees: 40, Seed: 9})
	quant := trainedForest(t, ds, ForestConfig{Trees: 40, Seed: 9, Flat: FlatConfig{Quantize: true}})

	for trial := 0; trial < 500; trial++ {
		x := []float64{float64(rng.Intn(8)), float64(rng.Intn(8)), float64(rng.Intn(1500))}
		if a, b := exact.PredictProb(x), quant.PredictProb(x); a != b {
			t.Fatalf("quantized PredictProb(%v) = %v, exact %v", x, b, a)
		}
	}
	if qb, eb := quant.FlatBytes(), exact.FlatBytes(); qb >= eb {
		t.Fatalf("quantized layout is %d bytes, exact %d: quantization must shrink the threshold array", qb, eb)
	}
}

// TestQuantizedDriftBounded: on continuous features float32 rounding
// may flip the occasional comparison; the probability drift must stay
// small in aggregate.
func TestQuantizedDriftBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	ds := xorDataset(400, rng)
	exact := trainedForest(t, ds, ForestConfig{Trees: 40, Seed: 10})
	quant := trainedForest(t, ds, ForestConfig{Trees: 40, Seed: 10, Flat: FlatConfig{Quantize: true}})

	var total float64
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		x := []float64{rng.Float64() * 1.2, rng.Float64() * 1.2}
		d := exact.PredictProb(x) - quant.PredictProb(x)
		if d < 0 {
			d = -d
		}
		total += d
	}
	if mean := total / trials; mean > 0.01 {
		t.Fatalf("mean quantized probability drift %.4f, want <= 0.01", mean)
	}
}

// TestLeafCapShrinksLayout: a leaf cap must shrink the flat arrays,
// keep every tree within the cap, and leave the trained trees usable
// for an uncapped re-flattening (pruning never mutates them).
func TestLeafCapShrinksLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	ds := intDataset(600, rng)
	full := trainedForest(t, ds, ForestConfig{Trees: 20, Seed: 11})
	capped := trainedForest(t, ds, ForestConfig{Trees: 20, Seed: 11, Flat: FlatConfig{MaxLeaves: 4}})

	if cb, fb := capped.FlatBytes(), full.FlatBytes(); cb >= fb {
		t.Fatalf("capped layout is %d bytes, full %d: the cap must shrink the arrays", cb, fb)
	}
	// Count leaves per tree in the capped flat layout.
	flat := capped.flat
	for ti, root := range flat.roots {
		end := int32(len(flat.feature))
		if ti+1 < len(flat.roots) {
			end = flat.roots[ti+1]
		}
		leaves := 0
		for i := root; i < end; i++ {
			if flat.feature[i] < 0 {
				leaves++
			}
		}
		if leaves > 4 {
			t.Fatalf("tree %d has %d leaves in the capped layout, want <= 4", ti, leaves)
		}
	}
	// The trained trees survive pruning untouched: flattening them again
	// without a cap reproduces the full layout size.
	if again := flatten(capped.trees, FlatConfig{}); again.bytes() != full.flat.bytes() {
		t.Fatalf("re-flattening the capped forest's trees gives %d bytes, want the full %d (pruning must not mutate the trained trees)", again.bytes(), full.flat.bytes())
	}
	// Capped predictions still separate the classes on training data.
	correct := 0
	for i := 0; i < ds.Len(); i++ {
		if capped.Predict(ds.X[i]) == ds.Y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(ds.Len()); acc < 0.85 {
		t.Fatalf("leaf-capped training accuracy %.3f, want >= 0.85", acc)
	}
}

// TestSnapshotRestoresQuantizedLayout: DecodeForest rebuilds the flat
// layout under the caller's FlatConfig, so a snapshot taken from an
// exact forest can serve quantized (and vice versa, losslessly, since
// trees serialize exact).
func TestSnapshotRestoresQuantizedLayout(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	ds := intDataset(300, rng)
	exact := trainedForest(t, ds, ForestConfig{Trees: 20, Seed: 12})
	snap := AppendForest(nil, exact)
	quant, _, err := DecodeForest(snap, 3, FlatConfig{Quantize: true})
	if err != nil {
		t.Fatal(err)
	}
	if quant.flat.threshold32 == nil {
		t.Fatal("restored forest did not adopt the quantized layout")
	}
	for trial := 0; trial < 200; trial++ {
		x := []float64{float64(rng.Intn(8)), float64(rng.Intn(8)), float64(rng.Intn(1500))}
		if a, b := exact.PredictProb(x), quant.PredictProb(x); a != b {
			t.Fatalf("quantized restore PredictProb(%v) = %v, exact %v", x, b, a)
		}
	}
}

// FuzzDecodeForest holds the forest codec to the fuzz contract: corrupt
// or truncated input errors, never panics, and a surviving decode is
// traversable.
func FuzzDecodeForest(f *testing.F) {
	rng := rand.New(rand.NewSource(28))
	forest, err := NewForest(intDataset(100, rng), ForestConfig{Trees: 3, Seed: 13})
	if err != nil {
		f.Fatal(err)
	}
	snap := AppendForest(nil, forest)
	f.Add(snap)
	f.Add(snap[:len(snap)/2])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, _, err := DecodeForest(data, 3, FlatConfig{})
		if err != nil {
			return
		}
		decoded.PredictProb([]float64{1, 2, 3})
	})
}

// BenchmarkQuantizedPredict compares the exact and quantized serving
// layouts on the flat traversal hot path.
func BenchmarkQuantizedPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(29))
	ds := intDataset(600, rng)
	for _, mode := range []struct {
		name string
		flat FlatConfig
	}{
		{"exact", FlatConfig{}},
		{"quantized", FlatConfig{Quantize: true}},
		{"quantized-cap32", FlatConfig{Quantize: true, MaxLeaves: 32}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			forest := trainedForest(b, ds, ForestConfig{Trees: 100, Seed: 14, Flat: mode.flat})
			x := []float64{5, 2, 900}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				forest.PredictProb(x)
			}
			b.ReportMetric(float64(forest.FlatBytes()), "flat-bytes")
		})
	}
}
