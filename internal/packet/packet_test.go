package packet

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

var (
	testMAC  = MustParseMAC("13:73:74:7e:a9:c2")
	apMAC    = MustParseMAC("02:00:00:00:00:01")
	deviceIP = MustParseIP4("192.168.1.57")
	gwIP     = MustParseIP4("192.168.1.1")
	cloudIP  = MustParseIP4("52.28.14.9")
	t0       = time.Date(2016, 3, 1, 10, 0, 0, 0, time.UTC)
)

// builder returns a Builder with an assigned IP, as a device has after DHCP.
func builder() *Builder {
	b := NewBuilder(testMAC)
	b.SetIP(deviceIP)
	return b
}

// roundTrip serializes p, decodes the bytes, re-serializes the decoded
// packet, and fails unless both byte strings match.
func roundTrip(t *testing.T, p *Packet) *Packet {
	t.Helper()
	wire, err := p.Serialize()
	if err != nil {
		t.Fatalf("Serialize: %v", err)
	}
	dec, err := Decode(wire, p.Timestamp)
	if err != nil {
		t.Fatalf("Decode(%x): %v", wire, err)
	}
	wire2, err := dec.Serialize()
	if err != nil {
		t.Fatalf("re-Serialize: %v", err)
	}
	if !bytes.Equal(wire, wire2) {
		t.Fatalf("round-trip mismatch:\n first=%x\nsecond=%x", wire, wire2)
	}
	return dec
}

func TestRoundTripCatalog(t *testing.T) {
	b := builder()
	pre := NewBuilder(testMAC) // pre-DHCP builder, IP 0.0.0.0
	tests := []struct {
		name string
		pkt  *Packet
	}{
		{"eapol-start", pre.EAPOLStart(apMAC, t0)},
		{"eapol-key-msg2", pre.EAPOLKey(apMAC, 2, 24, t0)},
		{"arp-probe", pre.ARPProbe(deviceIP, t0)},
		{"arp-announce", b.ARPAnnounce(t0)},
		{"arp-request", b.ARPRequestFor(gwIP, t0)},
		{"dhcp-discover", pre.DHCPDiscoverPkt(0xdeadbeef, "smartplug", t0)},
		{"dhcp-request", pre.DHCPRequestPkt(0xdeadbeef, deviceIP, gwIP, "smartplug", t0)},
		{"dns-query", b.DNSQueryPkt(apMAC, gwIP, 33211, 7, "cloud.vendor.example.com", DNSTypeA, t0)},
		{"mdns-announce", b.MDNSAnnouncePkt("_hue._tcp.local", "bridge-01", t0)},
		{"ssdp-msearch", b.SSDPMSearchPkt("ssdp:all", 50000, t0)},
		{"ssdp-notify", b.SSDPNotifyPkt("http://192.168.1.57:80/desc.xml", "upnp:rootdevice", "uuid:1", 50001, t0)},
		{"ntp-request", b.NTPRequestPkt(apMAC, gwIP, t0)},
		{"igmp-join", b.IGMPJoinPkt(IP4SSDP, t0)},
		{"tcp-syn", b.TCPSynPkt(apMAC, cloudIP, 49152, 443, t0)},
		{"tcp-ack", b.TCPAckPkt(apMAC, cloudIP, 49152, 443, t0)},
		{"tcp-fin", b.TCPFinPkt(apMAC, cloudIP, 49152, 443, t0)},
		{"http-get", b.HTTPRequestPkt(apMAC, cloudIP, 49153, "GET", "cloud.vendor.example.com", "/api/v1/register", "iot/1.0", 0, t0)},
		{"tls-hello", b.TLSClientHelloPkt(apMAC, cloudIP, 49154, "cloud.vendor.example.com", 0, t0)},
		{"icmp-echo", b.ICMPEchoPkt(apMAC, gwIP, 1, 1, 56, t0)},
		{"ndp-dad", b.NeighborSolicitPkt(t0)},
		{"ndp-rs", b.RouterSolicitPkt(t0)},
		{"mldv2-report", b.MLDv2ReportPkt(t0, IP6MDNS)},
		{"llc-test", b.LLCTestPkt(BroadcastMAC, 0x42, 35, t0)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			roundTrip(t, tt.pkt)
		})
	}
}

func TestDecodeFieldsDHCP(t *testing.T) {
	p := NewBuilder(testMAC).DHCPDiscoverPkt(0x01020304, "cam", t0)
	dec := roundTrip(t, p)
	if dec.Eth.Src != testMAC {
		t.Errorf("src MAC = %v, want %v", dec.Eth.Src, testMAC)
	}
	if dec.Eth.Dst != BroadcastMAC {
		t.Errorf("dst MAC = %v, want broadcast", dec.Eth.Dst)
	}
	if dec.IPv4 == nil || dec.IPv4.Src != IP4Zero || dec.IPv4.Dst != IP4Broadcast {
		t.Fatalf("IPv4 header = %+v, want 0.0.0.0 -> 255.255.255.255", dec.IPv4)
	}
	if dec.UDP == nil || dec.UDP.SrcPort != 68 || dec.UDP.DstPort != 67 {
		t.Fatalf("UDP ports = %+v, want 68 -> 67", dec.UDP)
	}
	_, _, dhcp, bootp, _, _, _, _ := dec.AppProtocols()
	if !dhcp || !bootp {
		t.Errorf("AppProtocols: dhcp=%v bootp=%v, want both true", dhcp, bootp)
	}
}

func TestBOOTPWithoutCookieIsNotDHCP(t *testing.T) {
	b := NewBuilder(testMAC)
	p := b.UDPTo(BroadcastMAC, IP4Broadcast, PortBOOTPCli, PortBOOTPSrv, BuildBOOTP(1, 7, testMAC), t0)
	p.IPv4.Src = IP4Zero
	dec := roundTrip(t, p)
	_, _, dhcp, bootp, _, _, _, _ := dec.AppProtocols()
	if dhcp {
		t.Error("plain BOOTP classified as DHCP")
	}
	if !bootp {
		t.Error("plain BOOTP not classified as BOOTP")
	}
}

func TestIPv4RouterAlertAndPadding(t *testing.T) {
	b := builder()
	p := b.IGMPJoinPkt(IP4SSDP, t0)
	dec := roundTrip(t, p)
	if !dec.IPv4.HasRouterAlert() {
		t.Error("IGMP join lost its Router Alert option")
	}
	if dec.IPv4.HasPadding() {
		t.Error("4-byte Router Alert option should not imply padding")
	}

	// Odd-length options force End-of-Options padding on the wire.
	p2 := b.ICMPEchoPkt(apMAC, gwIP, 1, 1, 8, t0)
	p2.IPv4.Options = []byte{IPOptNOP}
	dec2 := roundTrip(t, p2)
	if !dec2.IPv4.HasPadding() {
		t.Error("padded options not detected after round-trip")
	}
}

func TestIPv6HopByHopRouterAlert(t *testing.T) {
	p := builder().MLDv2ReportPkt(t0, IP6MDNS, IP6AllNodes)
	dec := roundTrip(t, p)
	if dec.IPv6 == nil || dec.IPv6.HopByHop == nil {
		t.Fatal("hop-by-hop header lost in round-trip")
	}
	if !dec.IPv6.HopByHop.HasRouterAlert() {
		t.Error("MLD report lost its Router Alert option")
	}
	if !dec.IPv6.HopByHop.HasPadding() {
		t.Error("hop-by-hop header should report PadN padding (4-byte RA + 2-byte PadN)")
	}
	if dec.ICMPv6 == nil || dec.ICMPv6.Type != ICMPv6MLDv2Report {
		t.Fatalf("ICMPv6 = %+v, want MLDv2 report", dec.ICMPv6)
	}
}

func TestChecksumValidationRejectsCorruption(t *testing.T) {
	wire, err := builder().NTPRequestPkt(apMAC, gwIP, t0).Serialize()
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{15, 25, 36, 45} { // IPv4 hdr, header fields, UDP payload
		corrupt := append([]byte(nil), wire...)
		corrupt[off] ^= 0xff
		if _, err := Decode(corrupt, t0); err == nil {
			t.Errorf("Decode accepted frame corrupted at offset %d", off)
		}
	}
}

func TestDecodeTruncated(t *testing.T) {
	wire, err := builder().TCPSynPkt(apMAC, cloudIP, 49152, 443, t0).Serialize()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 20; n++ {
		if _, err := Decode(wire[:n], t0); err == nil {
			t.Errorf("Decode accepted %d-byte truncation", n)
		}
	}
	// Truncating below the IP total length must fail too.
	if _, err := Decode(wire[:30], t0); !errors.Is(err, ErrTruncated) {
		t.Errorf("Decode(30 bytes) = %v, want ErrTruncated", err)
	}
}

func TestShortFramePadding(t *testing.T) {
	wire, err := builder().ARPAnnounce(t0).Serialize()
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != 60 {
		t.Errorf("ARP frame length = %d, want 60 (14 hdr + 46 min payload)", len(wire))
	}
}

func TestAppProtocolClassification(t *testing.T) {
	b := builder()
	tests := []struct {
		name string
		pkt  *Packet
		want string
	}{
		{"http", b.HTTPRequestPkt(apMAC, cloudIP, 49200, "GET", "h", "/", "a", 0, t0), "http"},
		{"https", b.TLSClientHelloPkt(apMAC, cloudIP, 49201, "h", 0, t0), "https"},
		{"dns", b.DNSQueryPkt(apMAC, gwIP, 33211, 1, "a.example", DNSTypeA, t0), "dns"},
		{"mdns", b.MDNSAnnouncePkt("_x._tcp.local", "i", t0), "mdns"},
		{"ssdp", b.SSDPMSearchPkt("ssdp:all", 50000, t0), "ssdp"},
		{"ntp", b.NTPRequestPkt(apMAC, gwIP, t0), "ntp"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			http, https, dhcp, bootp, ssdp, dns, mdns, ntp := tt.pkt.AppProtocols()
			got := map[string]bool{
				"http": http, "https": https, "dhcp": dhcp, "bootp": bootp,
				"ssdp": ssdp, "dns": dns, "mdns": mdns, "ntp": ntp,
			}
			for name, on := range got {
				if on != (name == tt.want) {
					t.Errorf("%s = %v, want %v", name, on, name == tt.want)
				}
			}
		})
	}
}

func TestPortClass(t *testing.T) {
	tests := []struct {
		port    uint16
		present bool
		want    int
	}{
		{0, false, 0},
		{0, true, 1},
		{80, true, 1},
		{1023, true, 1},
		{1024, true, 2},
		{49151, true, 2},
		{49152, true, 3},
		{65535, true, 3},
	}
	for _, tt := range tests {
		if got := PortClass(tt.port, tt.present); got != tt.want {
			t.Errorf("PortClass(%d, %v) = %d, want %d", tt.port, tt.present, got, tt.want)
		}
	}
}

func TestSummaryFormats(t *testing.T) {
	b := builder()
	tests := []struct {
		pkt  *Packet
		want string
	}{
		{b.ARPAnnounce(t0), "ARP"},
		{b.NTPRequestPkt(apMAC, gwIP, t0), "UDP"},
		{b.TCPSynPkt(apMAC, cloudIP, 49152, 443, t0), "TCP"},
		{b.ICMPEchoPkt(apMAC, gwIP, 1, 1, 8, t0), "ICMP"},
		{NewBuilder(testMAC).EAPOLStart(apMAC, t0), "EAPoL"},
		{b.LLCTestPkt(BroadcastMAC, 0x42, 8, t0), "LLC"},
	}
	for _, tt := range tests {
		if got := tt.pkt.Summary(); !bytes.Contains([]byte(got), []byte(tt.want)) {
			t.Errorf("Summary() = %q, want it to mention %q", got, tt.want)
		}
	}
}

func TestWireCaching(t *testing.T) {
	p := builder().NTPRequestPkt(apMAC, gwIP, t0)
	w1 := p.Wire()
	w2 := p.Wire()
	if &w1[0] != &w2[0] {
		t.Error("Wire() did not cache the serialization")
	}
	p.Invalidate()
	p.UDP.SrcPort = 124
	w3 := p.Wire()
	if bytes.Equal(w1, w3) {
		t.Error("Invalidate did not force re-serialization")
	}
}

func TestPortAccessors(t *testing.T) {
	b := builder()
	p := b.TCPSynPkt(apMAC, cloudIP, 49152, 443, t0)
	if sp, ok := p.SrcPort(); !ok || sp != 49152 {
		t.Errorf("SrcPort = %d,%v", sp, ok)
	}
	if dp, ok := p.DstPort(); !ok || dp != 443 {
		t.Errorf("DstPort = %d,%v", dp, ok)
	}
	arp := b.ARPAnnounce(t0)
	if _, ok := arp.SrcPort(); ok {
		t.Error("ARP packet reported a source port")
	}
	if _, ok := arp.DstIP(); ok {
		t.Error("ARP packet reported a destination IP")
	}
	if ip, ok := p.DstIP(); !ok || ip != cloudIP.String() {
		t.Errorf("DstIP = %q,%v", ip, ok)
	}
}
