package ml

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// xorDataset builds a noiseless 2-feature dataset that a depth-2 tree can
// separate only partially but a forest nails: y = x0 XOR x1.
func xorDataset(n int, rng *rand.Rand) *Dataset {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		a, b := float64(rng.Intn(2)), float64(rng.Intn(2))
		// Jitter inputs slightly so thresholds are learnable.
		x[i] = []float64{a + rng.Float64()*0.1, b + rng.Float64()*0.1}
		if (a == 1) != (b == 1) {
			y[i] = 1
		}
	}
	ds, err := NewDataset(x, y)
	if err != nil {
		panic(err)
	}
	return ds
}

// linearDataset is separable on feature 0 at threshold 0.5.
func linearDataset(n int, rng *rand.Rand) *Dataset {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := range x {
		v := rng.Float64()
		x[i] = []float64{v, rng.Float64()}
		if v > 0.5 {
			y[i] = 1
		}
	}
	ds, err := NewDataset(x, y)
	if err != nil {
		panic(err)
	}
	return ds
}

func TestNewDatasetValidation(t *testing.T) {
	if _, err := NewDataset(nil, nil); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := NewDataset([][]float64{{1}}, []int{0, 1}); err == nil {
		t.Error("mismatched labels accepted")
	}
	if _, err := NewDataset([][]float64{{1}, {1, 2}}, []int{0, 1}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, err := NewDataset([][]float64{{1}}, []int{2}); err == nil {
		t.Error("non-binary label accepted")
	}
}

func TestTreeFitsLinearData(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := linearDataset(200, rng)
	tree := NewTree(ds, TreeConfig{MTry: 2}, rng)
	errs := 0
	for i := 0; i < ds.Len(); i++ {
		if tree.Predict(ds.X[i]) != ds.Y[i] {
			errs++
		}
	}
	if errs != 0 {
		t.Errorf("tree mispredicts %d/%d training rows on separable data", errs, ds.Len())
	}
}

func TestTreePureNodeIsLeaf(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []int{1, 1, 1}
	ds, err := NewDataset(x, y)
	if err != nil {
		t.Fatal(err)
	}
	tree := NewTree(ds, TreeConfig{}, rand.New(rand.NewSource(1)))
	if tree.NodeCount() != 1 {
		t.Errorf("pure dataset grew %d nodes, want 1", tree.NodeCount())
	}
	if tree.Predict([]float64{5}) != 1 {
		t.Error("pure positive tree predicts 0")
	}
}

func TestTreeMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := xorDataset(400, rng)
	tree := NewTree(ds, TreeConfig{MaxDepth: 3, MTry: 2}, rng)
	if d := tree.Depth(); d > 3 {
		t.Errorf("Depth = %d, want <= 3", d)
	}
}

func TestTreeMinSamplesLeaf(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := xorDataset(200, rng)
	tree := NewTree(ds, TreeConfig{MinSamplesLeaf: 50, MTry: 2}, rng)
	// With a 50-row floor on 200 rows the tree can have at most 4 leaves
	// (7 nodes).
	if tree.NodeCount() > 7 {
		t.Errorf("NodeCount = %d, want <= 7 with MinSamplesLeaf=50", tree.NodeCount())
	}
}

func TestForestFitsXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	train := xorDataset(600, rng)
	test := xorDataset(200, rng)
	forest, err := NewForest(train, ForestConfig{Trees: 50, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for i := 0; i < test.Len(); i++ {
		if forest.Predict(test.X[i]) != test.Y[i] {
			errs++
		}
	}
	if acc := 1 - float64(errs)/float64(test.Len()); acc < 0.95 {
		t.Errorf("forest XOR accuracy = %.3f, want >= 0.95", acc)
	}
}

func TestForestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := xorDataset(300, rng)
	f1, err := NewForest(ds, ForestConfig{Trees: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := NewForest(ds, ForestConfig{Trees: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	probe := [][]float64{{0.05, 0.05}, {1.05, 0.02}, {0.5, 0.5}, {1.1, 1.1}}
	for _, x := range probe {
		if f1.PredictProb(x) != f2.PredictProb(x) {
			t.Errorf("same seed produced different forests at %v", x)
		}
	}
	f3, err := NewForest(ds, ForestConfig{Trees: 20, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for _, x := range probe {
		if f1.PredictProb(x) != f3.PredictProb(x) {
			same = false
		}
	}
	if same {
		t.Log("warning: different seeds produced identical predictions (possible but unlikely)")
	}
}

func TestForestEmptyDataset(t *testing.T) {
	if _, err := NewForest(nil, ForestConfig{}); err == nil {
		t.Error("NewForest(nil) succeeded")
	}
}

func TestForestProbRange(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := linearDataset(100, rng)
	forest, err := NewForest(ds, ForestConfig{Trees: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		p := forest.PredictProb([]float64{a, b})
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStratifiedKFoldPreservesClassBalance(t *testing.T) {
	// 27 classes with 20 samples each, as in the paper's dataset.
	labels := make([]int, 0, 540)
	for c := 0; c < 27; c++ {
		for i := 0; i < 20; i++ {
			labels = append(labels, c)
		}
	}
	rng := rand.New(rand.NewSource(9))
	folds, err := StratifiedKFold(labels, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 10 {
		t.Fatalf("got %d folds, want 10", len(folds))
	}
	seen := make(map[int]bool)
	for fi, fold := range folds {
		if len(fold) != 54 {
			t.Errorf("fold %d has %d samples, want 54", fi, len(fold))
		}
		perClass := make(map[int]int)
		for _, idx := range fold {
			if seen[idx] {
				t.Fatalf("sample %d appears in two folds", idx)
			}
			seen[idx] = true
			perClass[labels[idx]]++
		}
		for c, n := range perClass {
			if n != 2 {
				t.Errorf("fold %d class %d has %d samples, want 2", fi, c, n)
			}
		}
	}
	if len(seen) != 540 {
		t.Errorf("folds cover %d samples, want 540", len(seen))
	}
}

func TestStratifiedKFoldErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := StratifiedKFold([]int{0, 1}, 1, rng); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := StratifiedKFold([]int{0}, 2, rng); err == nil {
		t.Error("fewer samples than folds accepted")
	}
}

func TestTrainTestSplit(t *testing.T) {
	labels := []int{0, 0, 0, 0, 1, 1, 1, 1}
	rng := rand.New(rand.NewSource(2))
	folds, err := StratifiedKFold(labels, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	train, test := TrainTestSplit(folds, 0, len(labels))
	if len(train)+len(test) != len(labels) {
		t.Errorf("train+test = %d+%d, want %d total", len(train), len(test), len(labels))
	}
	inTest := make(map[int]bool)
	for _, i := range test {
		inTest[i] = true
	}
	for _, i := range train {
		if inTest[i] {
			t.Errorf("index %d in both train and test", i)
		}
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	got := SampleWithoutReplacement(10, 5, rng)
	if len(got) != 5 {
		t.Fatalf("sample size = %d, want 5", len(got))
	}
	seen := make(map[int]bool)
	for _, v := range got {
		if v < 0 || v >= 10 {
			t.Errorf("sample value %d out of range", v)
		}
		if seen[v] {
			t.Errorf("duplicate sample value %d", v)
		}
		seen[v] = true
	}
	// k > n returns all indices.
	if got := SampleWithoutReplacement(3, 10, rng); len(got) != 3 {
		t.Errorf("oversized k returned %d values, want 3", len(got))
	}
}
