package ml

import (
	"fmt"
	"math/rand"
)

// ForestConfig controls Random Forest training.
type ForestConfig struct {
	// Trees is the number of trees; 0 means DefaultTrees.
	Trees int
	// Tree configures the individual CART trees.
	Tree TreeConfig
	// Seed seeds the forest's randomness (bootstrap and feature
	// subsampling). Two forests trained with the same seed on the same
	// data are identical.
	Seed int64
	// Flat selects the flattened serving layout's compaction (float32
	// thresholds, leaf caps). The zero value keeps predictions
	// bit-identical to the trained trees; see FlatConfig.
	Flat FlatConfig
}

// DefaultTrees is the default forest size.
const DefaultTrees = 100

// Forest is a trained Random Forest binary classifier.
//
// After training the trees are additionally flattened into a
// struct-of-arrays node layout (see flatForest) that all prediction
// paths traverse; the per-tree representation is kept for
// introspection (NodeCount, Depth). A Forest is immutable after
// NewForest and safe for concurrent prediction.
type Forest struct {
	trees []*Tree
	flat  *flatForest
}

// NewForest trains a Random Forest on ds: each tree is induced on a
// bootstrap sample of the rows with per-node feature subsampling
// (Breiman, 2001).
func NewForest(ds *Dataset, cfg ForestConfig) (*Forest, error) {
	if ds == nil || ds.Len() == 0 {
		return nil, fmt.Errorf("ml: training on empty dataset")
	}
	nTrees := cfg.Trees
	if nTrees <= 0 {
		nTrees = DefaultTrees
	}
	master := rand.New(rand.NewSource(cfg.Seed))
	f := &Forest{trees: make([]*Tree, nTrees)}
	for i := range f.trees {
		// Derive one generator per tree from the master stream so tree
		// training is independent of the others' consumption pattern.
		rng := rand.New(rand.NewSource(master.Int63()))
		sample := ds.Subset(bootstrap(ds.Len(), rng))
		f.trees[i] = NewTree(sample, cfg.Tree, rng)
	}
	f.flat = flatten(f.trees, cfg.Flat)
	return f, nil
}

// PredictProb returns the fraction of trees voting for the positive
// class.
func (f *Forest) PredictProb(x []float64) float64 {
	return float64(f.flat.votes(x)) / float64(len(f.trees))
}

// PredictProbParallel is PredictProb with the trees partitioned across
// up to workers goroutines (<= 0 selects GOMAXPROCS). Votes are integer
// counts summed after the workers join, so the result is bit-identical
// to PredictProb.
func (f *Forest) PredictProbParallel(x []float64, workers int) float64 {
	votes := f.flat.votesParallel(x, defaultWorkers(workers))
	return float64(votes) / float64(len(f.trees))
}

// PredictProbBatch returns PredictProb for every sample of xs,
// evaluating samples in parallel across up to workers goroutines (<= 0
// selects GOMAXPROCS). Each output cell depends only on its own sample,
// so the slice is bit-identical to calling PredictProb in a loop.
func (f *Forest) PredictProbBatch(xs [][]float64, workers int) []float64 {
	if len(xs) == 0 {
		return nil
	}
	votes := make([]int, len(xs))
	f.flat.votesBatch(xs, votes, defaultWorkers(workers))
	out := make([]float64, len(xs))
	for i, v := range votes {
		out[i] = float64(v) / float64(len(f.trees))
	}
	return out
}

// Predict returns the majority-vote class for x.
func (f *Forest) Predict(x []float64) int {
	if f.PredictProb(x) >= 0.5 {
		return 1
	}
	return 0
}

// Trees returns the number of trees in the forest.
func (f *Forest) Trees() int { return len(f.trees) }

// FlatBytes returns the byte size of the flattened serving arrays —
// the cache-resident footprint the FlatConfig compaction shrinks.
func (f *Forest) FlatBytes() int { return f.flat.bytes() }
