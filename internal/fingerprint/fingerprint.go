// Package fingerprint builds IoT Sentinel device fingerprints from packet
// feature vectors (paper §IV-A).
//
// Two representations are produced. F is the variable-length fingerprint:
// the sequence of per-packet feature vectors in emission order, with
// consecutive identical vectors discarded. F′ is the fixed-size
// fingerprint used for classification: the first 12 *unique* vectors of F
// concatenated into a 276-dimensional feature vector, zero-padded when F
// contains fewer than 12 unique packets.
package fingerprint

import (
	"fmt"

	"repro/internal/features"
	"repro/internal/packet"
)

// FixedPackets is the number of unique packet vectors concatenated into
// F′. The paper's preliminary analysis found 12 to be a good trade-off:
// long enough to distinguish device-types, short enough to be fully
// filled with unique packets.
const FixedPackets = 12

// FixedLen is the dimensionality of F′ (12 packets × 23 features).
const FixedLen = FixedPackets * features.NumFeatures

// Fingerprint is the variable-length fingerprint F: a 23×n matrix stored
// as its n column vectors. Construct with New or FromVectors so the
// consecutive-duplicate invariant holds.
type Fingerprint struct {
	vectors []features.Vector
}

// New extracts the fingerprint of a captured packet sequence: per-packet
// features with fresh destination-counter state, consecutive duplicates
// removed.
func New(pkts []*packet.Packet) *Fingerprint {
	return FromVectors(features.ExtractAll(pkts))
}

// FromVectors builds a fingerprint from pre-extracted feature vectors,
// discarding consecutive identical vectors (p_i == p_{i+1}) as the paper
// prescribes. The input slice is not retained.
func FromVectors(vs []features.Vector) *Fingerprint {
	out := make([]features.Vector, 0, len(vs))
	for i, v := range vs {
		if i > 0 && v == vs[i-1] {
			continue
		}
		out = append(out, v)
	}
	return &Fingerprint{vectors: out}
}

// Len returns n, the number of packet columns in F.
func (f *Fingerprint) Len() int { return len(f.vectors) }

// At returns the i-th packet vector of F.
func (f *Fingerprint) At(i int) features.Vector { return f.vectors[i] }

// Vectors returns a copy of the packet vectors of F.
func (f *Fingerprint) Vectors() []features.Vector {
	return append([]features.Vector(nil), f.vectors...)
}

// View returns the packet vectors of F without copying. The returned
// slice must not be modified; use Vectors for an owned copy. View exists
// for hot paths (edit-distance discrimination) where the per-call copy
// of Vectors dominates the comparison itself.
func (f *Fingerprint) View() []features.Vector { return f.vectors }

// UniquePrefix returns the first max unique vectors of F in first-seen
// order.
func (f *Fingerprint) UniquePrefix(max int) []features.Vector {
	seen := make(map[features.Vector]struct{}, max)
	out := make([]features.Vector, 0, max)
	for _, v := range f.vectors {
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
		if len(out) == max {
			break
		}
	}
	return out
}

// UniqueCount returns the number of distinct packet vectors in F.
func (f *Fingerprint) UniqueCount() int {
	seen := make(map[features.Vector]struct{}, len(f.vectors))
	for _, v := range f.vectors {
		seen[v] = struct{}{}
	}
	return len(seen)
}

// Fixed computes F′: the 276-dimensional fixed-size fingerprint, the
// first 12 unique vectors of F flattened in order and zero-padded.
func (f *Fingerprint) Fixed() []float64 { return f.FixedN(FixedPackets) }

// FixedN computes a fixed-size fingerprint truncated at n unique packet
// vectors (n·23 dimensions, zero-padded). The paper settled on n = 12
// after preliminary analysis; FixedN supports the ablation that revisits
// that trade-off.
func (f *Fingerprint) FixedN(n int) []float64 {
	out := make([]float64, n*features.NumFeatures)
	f.FixedNInto(out, n)
	return out
}

// fixedSeenInline bounds the stack-resident dedup window of FixedNInto:
// prefixes up to this many unique vectors (every paper-sized F′ — n is
// 12 there) dedup by linear scan over a stack array instead of a heap
// map, so the batch fill paths allocate nothing per fingerprint.
const fixedSeenInline = 32

// FixedNInto computes FixedN in place: dst, which must have length
// n·23, receives the first n unique vectors of F flattened in order and
// is zero-padded past them. The dedup is allocation-free for n up to
// fixedSeenInline; the identification hot paths reuse one arena row per
// sample across calls. Element values are exact int32→float64
// conversions, identical to FixedN's.
func (f *Fingerprint) FixedNInto(dst []float64, n int) {
	if n <= 0 {
		return
	}
	dst = dst[:n*features.NumFeatures]
	var seenBuf [fixedSeenInline]features.Vector
	seen := seenBuf[:0]
	if n > len(seenBuf) {
		seen = make([]features.Vector, 0, n)
	}
	w := 0
outer:
	for _, v := range f.vectors {
		for _, u := range seen {
			if u == v {
				continue outer
			}
		}
		seen = append(seen, v)
		for _, e := range v {
			dst[w] = float64(e)
			w++
		}
		if len(seen) == n {
			break
		}
	}
	for ; w < len(dst); w++ {
		dst[w] = 0
	}
}

// String summarizes the fingerprint for logs.
func (f *Fingerprint) String() string {
	return fmt.Sprintf("Fingerprint{n=%d unique=%d}", f.Len(), f.UniqueCount())
}

// Equal reports whether two fingerprints have identical packet sequences.
func (f *Fingerprint) Equal(g *Fingerprint) bool {
	if f.Len() != g.Len() {
		return false
	}
	for i := range f.vectors {
		if f.vectors[i] != g.vectors[i] {
			return false
		}
	}
	return true
}
