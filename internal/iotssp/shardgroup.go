package iotssp

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/core"
	"repro/internal/fingerprint"
)

// ShardGroupConfig tunes a ShardGroup. The zero value selects defaults
// sized for fast failover between co-located replicas.
type ShardGroupConfig struct {
	// Shard tunes each member's RemoteShard client. Zero fields take the
	// RemoteShard defaults except the retry depth: a group member fails
	// over to a healthy replica instead of riding out a restart, so
	// MaxRetries defaults to a shallow 2 (with RetryBackoff 5ms and
	// MaxBackoff 25ms) rather than RemoteShard's deep 20. Shard.Seed
	// seeds the group's jitter source; each member derives its own
	// decorrelated seed from it.
	Shard RemoteShardConfig
	// FailureThreshold is the number of consecutive failed operations
	// after which a member is ejected from routing (each operation
	// already carries the member client's own shallow retries, so the
	// streak is debounced). 0 selects 1.
	FailureThreshold int
	// ProbeBackoff is the delay before an ejected member is probed for
	// re-admission; every failed probe doubles it (jittered to 50–150%)
	// up to MaxProbeBackoff. 0 selects 50ms.
	ProbeBackoff time.Duration
	// MaxProbeBackoff caps the probe backoff. 0 selects 2s.
	MaxProbeBackoff time.Duration
}

func (c ShardGroupConfig) withDefaults() ShardGroupConfig {
	if c.Shard.MaxRetries == 0 {
		c.Shard.MaxRetries = 2
		if c.Shard.RetryBackoff == 0 {
			c.Shard.RetryBackoff = 5 * time.Millisecond
		}
		if c.Shard.MaxBackoff == 0 {
			c.Shard.MaxBackoff = 25 * time.Millisecond
		}
	}
	c.Shard = c.Shard.withDefaults()
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 1
	}
	if c.ProbeBackoff <= 0 {
		c.ProbeBackoff = 50 * time.Millisecond
	}
	if c.MaxProbeBackoff <= 0 {
		c.MaxProbeBackoff = 2 * time.Second
	}
	return c
}

// ShardMemberStats is one group member's health and traffic snapshot.
type ShardMemberStats struct {
	// Addr is the member's address.
	Addr string `json:"addr"`
	// BreakerState is the member's health: admission, failure streak,
	// ejection/re-admission transitions.
	backoff.BreakerState
	// Requests and Failures count operations routed at this member and
	// the ones that failed at the transport level.
	Requests uint64 `json:"requests"`
	Failures uint64 `json:"failures"`
	// Shard snapshots the member's RemoteShard client counters
	// (including its lineconn transport block).
	Shard RemoteShardStats `json:"shard"`
}

// ShardGroupStats is a snapshot of a ShardGroup's counters.
type ShardGroupStats struct {
	// Requests counts shard operations issued to the group; Failovers
	// counts operations re-routed to another member after a retryable
	// failure; Failures counts operations that exhausted every member.
	Requests  uint64 `json:"requests"`
	Failovers uint64 `json:"failovers"`
	Failures  uint64 `json:"failures"`
	// Version is the group's reconciled enrolment version (the maximum
	// observed across members).
	Version uint64 `json:"version"`
	// Members holds per-member health and traffic in member order.
	Members []ShardMemberStats `json:"members"`
}

// groupMember is one replicated shard server: its RemoteShard client
// plus its health breaker.
type groupMember struct {
	rs      *RemoteShard
	breaker *backoff.Breaker

	requests, failures atomic.Uint64
}

// ShardGroup is a replicated shard: N shard servers hosting identical
// copies of one partition behind a single health-aware core.Shard, so a
// core.ShardedBank (assembled through core.NewShardedBankFrom) sees one
// logical shard whose restarts cost zero added latency. It is the
// FleetPool machinery one layer down: read operations
// (classify/discriminate/meta) round-robin across admitted members for
// load spread, a member failing an operation is retried transparently
// on the next member, FailureThreshold consecutive failures eject a
// member from routing, and an ejected member is probed back in with
// jittered doubling backoff — so a mid-run member restart is absorbed
// by failover instead of every in-flight request riding a deep retry
// loop against the dead server (the retry burst a single-replica
// RemoteShard pays).
//
// Enrolments fan out to every member — each replica must train the new
// type so reads stay equivalent wherever they land — and the group's
// Version reconciles to the maximum observed across members: replicas
// that start at the same version move in lockstep through a fan-out
// enrolment, so the verdict cache above sees exactly one version bump
// and invalidates the dependent entries exactly once, never once per
// replica. An enrolment that fails on any member is surfaced as an
// error (the replicas may have diverged and the group refuses to hide
// it); "already enrolled" answers reconcile against the member's
// authoritative type list the way core.ShardedBank.Enroll does, so a
// retried fan-out whose first attempt partially landed converges.
//
// The members must host bit-identical banks (same training data,
// config and seed): the group load-spreads reads on the assumption that
// any member's answer is the answer. ShardGroup is safe for concurrent
// use.
type ShardGroup struct {
	cfg     ShardGroupConfig
	members []*groupMember
	cursor  atomic.Uint64 // round-robin member cursor

	// typesMu guards the cached type list (refreshed by Types).
	typesMu sync.Mutex
	types   []string

	requests, failovers, failures atomic.Uint64
}

// NewShardGroup creates a group over the member shard-server addresses.
// No connection is made until the first operation.
func NewShardGroup(addrs []string, cfg ShardGroupConfig) *ShardGroup {
	cfg = cfg.withDefaults()
	jitter := backoff.NewJitter(cfg.Shard.Seed)
	bcfg := backoff.BreakerConfig{
		FailureThreshold: cfg.FailureThreshold,
		ProbeBackoff:     cfg.ProbeBackoff,
		MaxProbeBackoff:  cfg.MaxProbeBackoff,
	}
	g := &ShardGroup{cfg: cfg, members: make([]*groupMember, len(addrs))}
	for i, addr := range addrs {
		mcfg := cfg.Shard
		mcfg.Seed = jitter.Derive()
		g.members[i] = &groupMember{
			rs:      NewRemoteShard(addr, mcfg),
			breaker: backoff.NewBreaker(bcfg, jitter),
		}
	}
	return g
}

// Stats snapshots the group counters and per-member health.
func (g *ShardGroup) Stats() ShardGroupStats {
	st := ShardGroupStats{
		Requests:  g.requests.Load(),
		Failovers: g.failovers.Load(),
		Failures:  g.failures.Load(),
		Version:   g.Version(),
		Members:   make([]ShardMemberStats, len(g.members)),
	}
	for i, m := range g.members {
		st.Members[i] = ShardMemberStats{
			Addr:         m.rs.Addr(),
			BreakerState: m.breaker.State(),
			Requests:     m.requests.Load(),
			Failures:     m.failures.Load(),
			Shard:        m.rs.Stats(),
		}
	}
	return st
}

// Members returns the group size.
func (g *ShardGroup) Members() int { return len(g.members) }

// Member returns the i-th member's RemoteShard client (for targeted
// inspection in failover drills).
func (g *ShardGroup) Member(i int) *RemoteShard { return g.members[i].rs }

// do runs one read operation with health-aware member failover: members
// are tried in round-robin order starting from the rotating cursor,
// skipping ejected ones, and a transport-level failure moves on to the
// next admitted member. When every member is ejected, one caller is let
// through as a full-outage recovery probe.
func (g *ShardGroup) do(req shardRequest, timeout time.Duration) (shardResponse, error) {
	g.requests.Add(1)
	start := int(g.cursor.Add(1) % uint64(len(g.members)))
	var lastErr error
	attempted := false
	for k := 0; k < len(g.members); k++ {
		m := g.members[(start+k)%len(g.members)]
		if !m.breaker.Admit(time.Now()) {
			continue
		}
		if attempted {
			g.failovers.Add(1)
		}
		attempted = true
		resp, err := g.tryMember(m, req, timeout)
		if err == nil || (resp.Error != "" && !resp.Retryable) {
			return resp, err
		}
		lastErr = err
	}
	if !attempted {
		// Every member is ejected and none is due for a scheduled probe:
		// push one paced probe rather than failing without trying. At
		// most one probe is in flight per member; concurrent callers fail
		// fast instead of herding onto a down shard.
		m := g.members[start]
		if !m.breaker.AdmitProbe() {
			g.failures.Add(1)
			return shardResponse{}, fmt.Errorf("iotssp: shard group: all %d members ejected, recovery probe in flight", len(g.members))
		}
		resp, err := g.tryMember(m, req, timeout)
		if err == nil || (resp.Error != "" && !resp.Retryable) {
			return resp, err
		}
		lastErr = err
	}
	g.failures.Add(1)
	return shardResponse{}, fmt.Errorf("iotssp: shard group: all %d members failed: %w", len(g.members), lastErr)
}

// tryMember runs one operation against one member and folds the outcome
// into its breaker. A non-retryable service error (malformed request,
// duplicate enrolment) counts as member health: the shard itself
// answered, and another replica would answer the same.
func (g *ShardGroup) tryMember(m *groupMember, req shardRequest, timeout time.Duration) (shardResponse, error) {
	m.requests.Add(1)
	resp, err := m.rs.do(req, timeout)
	if err == nil || (resp.Error != "" && !resp.Retryable) {
		m.breaker.NoteSuccess()
		return resp, err
	}
	m.failures.Add(1)
	m.breaker.NoteFailure(time.Now())
	return resp, err
}

// ClassifyBatch implements core.Shard: the batch ships to one healthy
// member (any replica's answer is the answer), failing over
// transparently if that member dies mid-flight. On a full group outage
// it fails open to all-reject, like RemoteShard.
func (g *ShardGroup) ClassifyBatch(fps []*fingerprint.Fingerprint, workers int) [][]string {
	_ = workers // the member server fans the batch across its own cores
	out := make([][]string, len(fps))
	if len(fps) == 0 {
		return out
	}
	batch := make([]string, len(fps))
	for i, f := range fps {
		packed, err := fingerprint.Pack(f)
		if err != nil {
			return out
		}
		batch[i] = packed
	}
	resp, err := g.do(shardRequest{Op: OpClassify, Batch: batch}, g.cfg.Shard.Timeout)
	if err != nil || len(resp.Accepts) != len(fps) {
		return out
	}
	return resp.Accepts
}

// Discriminate implements core.Shard with the same member failover. On
// a full group outage it reports no scores, conceding the
// discrimination to the other shards' candidates.
func (g *ShardGroup) Discriminate(f *fingerprint.Fingerprint, candidates []string) (string, map[string]float64) {
	packed, err := fingerprint.Pack(f)
	if err != nil {
		return "", nil
	}
	resp, err := g.do(shardRequest{Op: OpDiscriminate, Fingerprint: packed, Candidates: candidates}, g.cfg.Shard.Timeout)
	if err != nil {
		return "", nil
	}
	return resp.Best, resp.Scores
}

// Enroll implements core.Shard by fanning the enrolment out to every
// member concurrently: each replica trains the new type so reads stay
// equivalent wherever the group routes them, and because members that
// start at the same version all move one step, the reconciled group
// Version bumps exactly once. A member answering "already enrolled" is
// reconciled against its authoritative type list (a lost enrolment ack
// retried through the fan-out must converge, not fail). Any other
// member error is surfaced: the replicas may have diverged and hiding
// it would quietly break the bit-equality contract.
func (g *ShardGroup) Enroll(name string, prints []*fingerprint.Fingerprint) error {
	errs := make([]error, len(g.members))
	var wg sync.WaitGroup
	for i, m := range g.members {
		wg.Add(1)
		go func(i int, m *groupMember) {
			defer wg.Done()
			err := m.rs.Enroll(name, prints)
			if err != nil {
				// Reconcile against the member's authoritative state, the
				// way core.ShardedBank.Enroll does: if the member lists the
				// type, this enrolment (or a lost-ack predecessor) landed.
				for _, have := range m.rs.Types() {
					if have == name {
						err = nil
						break
					}
				}
			}
			if err != nil {
				errs[i] = fmt.Errorf("iotssp: shard group member %s: %w", m.rs.Addr(), err)
			}
		}(i, m)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Version implements core.Shard as the maximum enrolment version
// observed across members — the group's reconciled version. It never
// blocks on the network: each member serves its locally cached stamp,
// and versions only grow, so the maximum is monotonic even while a
// fan-out enrolment is mid-flight across the replicas.
func (g *ShardGroup) Version() uint64 {
	var v uint64
	for _, m := range g.members {
		if mv := m.rs.Version(); mv > v {
			v = mv
		}
	}
	return v
}

// Types implements core.Shard: it asks a healthy member for the
// replicated partition's type list, falling back to the last
// successfully fetched list when the whole group is unreachable.
func (g *ShardGroup) Types() []string {
	resp, err := g.do(shardRequest{Op: OpMeta}, g.cfg.Shard.Timeout)
	g.typesMu.Lock()
	defer g.typesMu.Unlock()
	if err == nil {
		g.types = append([]string(nil), resp.Types...)
	}
	return append([]string(nil), g.types...)
}

// Close severs every member's connections and fails outstanding
// requests.
func (g *ShardGroup) Close() error {
	for _, m := range g.members {
		m.rs.Close()
	}
	return nil
}

// ShardGroup implements core.Shard over replicated shard servers.
var _ core.Shard = (*ShardGroup)(nil)
